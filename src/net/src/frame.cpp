#include "ftmc/net/frame.hpp"

#include <limits>

namespace ftmc::net {

std::string encode_frame(std::string_view payload) {
  if (payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw FrameError("frame payload of " + std::to_string(payload.size()) +
                     " bytes exceeds the 32-bit length field");
  }
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out += static_cast<char>((n >> 24) & 0xff);
  out += static_cast<char>((n >> 16) & 0xff);
  out += static_cast<char>((n >> 8) & 0xff);
  out += static_cast<char>(n & 0xff);
  out.append(payload);
  return out;
}

std::optional<std::string> FrameDecoder::next() {
  if (buffer_.size() < 4) return std::nullopt;
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t length =
      (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
  if (length > max_frame_bytes_) {
    throw FrameError("frame length " + std::to_string(length) +
                     " exceeds the limit of " +
                     std::to_string(max_frame_bytes_) + " bytes");
  }
  if (buffer_.size() < 4u + length) return std::nullopt;
  std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4u + length);
  return payload;
}

}  // namespace ftmc::net
