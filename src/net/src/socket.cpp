#include "ftmc/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "ftmc/io/json.hpp"
#include "ftmc/obs/registry.hpp"

namespace ftmc::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

[[nodiscard]] std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// poll() for `events` with EINTR retry against an absolute deadline
/// (deadline < 0 = no deadline). Returns the ready revents, or 0 on
/// timeout.
[[nodiscard]] short poll_fd(int fd, short events, std::int64_t deadline_ms) {
  while (true) {
    int wait = -1;
    if (deadline_ms >= 0) {
      const std::int64_t left = deadline_ms - now_ms();
      if (left <= 0) return 0;
      wait = static_cast<int>(left);
    }
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int rc = ::poll(&p, 1, wait);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (rc == 0) return 0;
    return p.revents;
  }
}

struct TransportMetrics {
  obs::Counter connections_total;
  obs::Counter frames_total;
  obs::Counter protocol_errors;
  obs::Counter truncated_streams;
  obs::Counter bytes_in;
  obs::Counter bytes_out;

  static TransportMetrics with_prefix(const std::string& prefix) {
    obs::Registry& reg = obs::Registry::global();
    return {reg.counter(prefix + ".connections_total"),
            reg.counter(prefix + ".frames_total"),
            reg.counter(prefix + ".protocol_errors"),
            reg.counter(prefix + ".truncated_streams"),
            reg.counter(prefix + ".bytes_in"),
            reg.counter(prefix + ".bytes_out")};
  }
};

}  // namespace

bool send_all(int fd, std::string_view bytes) noexcept {
  const char* data = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, data, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool wait_readable(int fd, int timeout_ms) {
  const std::int64_t deadline =
      timeout_ms < 0 ? -1 : now_ms() + timeout_ms;
  return poll_fd(fd, POLLIN, deadline) != 0;
}

int connect_tcp(const std::string& host, std::uint16_t port,
                int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad host address \"" + host + "\"");
  }

  // Non-blocking connect so the deadline holds even against a peer that
  // never answers the SYN; the fd goes back to blocking afterwards.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fcntl");
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  if (rc != 0) {
    const std::int64_t deadline =
        timeout_ms < 0 ? -1 : now_ms() + timeout_ms;
    short revents = 0;
    try {
      revents = poll_fd(fd, POLLOUT, deadline);
    } catch (...) {
      ::close(fd);
      throw;
    }
    if (revents == 0) {
      ::close(fd);
      throw TimeoutError("connect " + host + ":" + std::to_string(port) +
                         " timed out after " + std::to_string(timeout_ms) +
                         " ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      errno = err != 0 ? err : errno;
      throw_errno("connect " + host + ":" + std::to_string(port));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("fcntl");
  }
  return fd;
}

FramedClient::FramedClient(const std::string& host, std::uint16_t port,
                           FramedClientOptions options)
    : read_timeout_ms_(options.read_timeout_ms),
      decoder_(options.max_frame_bytes) {
  fd_ = connect_tcp(host, port, options.connect_timeout_ms);
}

FramedClient::~FramedClient() {
  if (fd_ >= 0) ::close(fd_);
}

void FramedClient::send_raw(std::string_view bytes) {
  if (!send_all(fd_, bytes)) throw_errno("send");
}

std::string FramedClient::read_response() {
  char buffer[64 * 1024];
  const std::int64_t deadline =
      read_timeout_ms_ < 0 ? -1 : now_ms() + read_timeout_ms_;
  while (true) {
    if (auto payload = decoder_.next()) return *payload;
    if (poll_fd(fd_, POLLIN, deadline) == 0) {
      throw TimeoutError("response timed out after " +
                         std::to_string(read_timeout_ms_) + " ms");
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      throw std::runtime_error(
          "connection closed before a complete response frame");
    }
    decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

std::string FramedClient::call(std::string_view payload) {
  send_raw(encode_frame(payload));
  return read_response();
}

FramedServer::FramedServer(Handler handler, FramedServerOptions options,
                           StopPredicate should_stop)
    : handler_(std::move(handler)),
      options_(std::move(options)),
      should_stop_(std::move(should_stop)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad bind address \"" + options_.bind_address +
                             "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind " + options_.bind_address + ":" +
                std::to_string(options_.port));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) != 0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

FramedServer::~FramedServer() {
  stop();
  reap_connections(/*join_all=*/true);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool FramedServer::stop_requested() {
  if (stopping_.load(std::memory_order_acquire)) return true;
  if (should_stop_ && should_stop_()) {
    stop();
    return true;
  }
  return false;
}

void FramedServer::reap_connections(bool join_all) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (join_all) {
    // Wake handlers blocked in recv() on idle connections before
    // joining them — a stopping daemon must not wait for clients to
    // hang up. The fd stays valid until the join below: only this
    // reaper closes it.
    for (Connection& conn : connections_) {
      if (!conn.done->load(std::memory_order_acquire)) {
        ::shutdown(conn.fd, SHUT_RDWR);
      }
    }
  }
  // Compact into a fresh vector: move-*assigning* over a still-joinable
  // std::thread (e.g. a slot onto itself) would terminate().
  std::vector<Connection> alive;
  for (Connection& conn : connections_) {
    if (join_all || conn.done->load(std::memory_order_acquire)) {
      if (conn.thread.joinable()) conn.thread.join();
      ::close(conn.fd);
    } else {
      alive.push_back(std::move(conn));
    }
  }
  connections_ = std::move(alive);
}

void FramedServer::stop() noexcept {
  // shutdown() (not close) wakes a blocked accept() without freeing the
  // fd another thread may still reference, and is async-signal-safe —
  // daemon SIGINT/SIGTERM handlers call this directly.
  if (!stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
}

void FramedServer::serve() {
  while (!stop_requested()) {
    // Poll-then-accept so the stop predicate is evaluated even when no
    // client ever connects (a completed fleet campaign must not wait
    // for one more connection to notice it is done).
    const short revents =
        poll_fd(listen_fd_, POLLIN, now_ms() + options_.accept_poll_ms);
    if (revents == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop()) or unrecoverable
    }
    reap_connections(/*join_all=*/false);
    Connection conn;
    conn.done = std::make_shared<std::atomic<bool>>(false);
    conn.fd = fd;
    auto done = conn.done;
    conn.thread = std::thread([this, fd, done] {
      handle_connection(fd, *done);
    });
    const std::lock_guard<std::mutex> lock(mu_);
    connections_.push_back(std::move(conn));
  }
  reap_connections(/*join_all=*/true);
}

void FramedServer::handle_connection(int fd, std::atomic<bool>& done) {
  TransportMetrics metrics =
      TransportMetrics::with_prefix(options_.metrics_prefix);
  metrics.connections_total.inc();
  FrameDecoder decoder(options_.max_frame_bytes);
  char buffer[64 * 1024];
  bool close_now = false;
  // Deadline armed only while a frame is partially buffered: an idle
  // peer may wait forever, a stalled one mid-frame may not.
  std::int64_t frame_deadline = -1;
  while (!close_now) {
    const short revents =
        poll_fd(fd, POLLIN, now_ms() + options_.idle_poll_ms);
    if (revents == 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (frame_deadline >= 0 && now_ms() >= frame_deadline) {
        metrics.truncated_streams.inc();
        break;  // peer stalled mid-frame: drop it, never wedge
      }
      continue;
    }
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {  // EOF
      if (!decoder.idle()) metrics.truncated_streams.inc();
      break;
    }
    metrics.bytes_in.inc(static_cast<std::uint64_t>(n));
    decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    while (true) {
      std::optional<std::string> payload;
      try {
        payload = decoder.next();
      } catch (const FrameError& e) {
        // The stream is unrecoverable: answer once, then hang up.
        metrics.protocol_errors.inc();
        const std::string err = encode_frame(
            io::json::Object{}
                .add_string("type", "error")
                .add_string("error", e.what())
                .str());
        if (send_all(fd, err)) {
          metrics.bytes_out.inc(err.size());
        }
        close_now = true;
        break;
      }
      if (!payload) break;
      metrics.frames_total.inc();
      const std::string response = encode_frame(handler_(*payload));
      if (!send_all(fd, response)) {
        close_now = true;
        break;
      }
      metrics.bytes_out.inc(response.size());
      if (stop_requested()) {
        // The response reached the socket; now take the listener down.
        close_now = true;
        break;
      }
    }
    frame_deadline = (!close_now && !decoder.idle() &&
                      options_.mid_frame_timeout_ms > 0)
                         ? now_ms() + options_.mid_frame_timeout_ms
                         : -1;
  }
  // FIN the peer now so it sees EOF promptly; the *close* stays with
  // the reaper, which may still need the fd valid to shutdown() it.
  ::shutdown(fd, SHUT_RDWR);
  done.store(true, std::memory_order_release);
}

}  // namespace ftmc::net
