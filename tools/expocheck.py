#!/usr/bin/env python3
"""CI validator for Prometheus text exposition (version 0.0.4) output.

``ftmc_serve`` exposes the obs registry in Prometheus text format (the
``expose`` request and the ``--obs-export`` mode; see
docs/observability.md). This checker parses that output strictly and
fails on anything a real scraper would reject or silently misread:

  - malformed lines (neither a sample, a ``# TYPE``/``# HELP`` comment,
    nor blank);
  - invalid metric or label names, or ``# TYPE`` naming a type other
    than counter/gauge/histogram/summary/untyped;
  - samples appearing before their ``# TYPE`` line, or interleaved
    metric families;
  - values that are not valid exposition floats (``+Inf``, ``-Inf`` and
    ``NaN`` are legal; the JSON snapshot's ``"inf"`` strings are not);
  - histograms whose ``_bucket`` series are not cumulative
    (non-monotone counts), lack the ``le="+Inf"`` bucket, or whose
    ``+Inf`` bucket disagrees with ``_count``;
  - counters or histogram counts with negative values.

Usage:
  some_producer | tools/expocheck.py          # reads stdin
  tools/expocheck.py exposition.txt           # or a file

Exit codes: 0 valid, 1 invalid, 2 usage error.
"""

from __future__ import annotations

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?\s*$")
LABEL = re.compile(r'^(?P<name>[^=]+)="(?P<value>(?:[^"\\]|\\.)*)"$')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_value(text: str) -> float:
    """An exposition float: plain float syntax plus +Inf/-Inf/NaN."""
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    # Reject the JSON snapshot spellings and other case variants early:
    # a scraper would either reject them or (worse) read them as text.
    if text.lower() in {"inf", "-inf", "+inf", "nan", '"inf"', '"-inf"'}:
        raise ValueError(f"non-canonical non-finite value {text!r}")
    return float(text)


class Checker:
    def __init__(self) -> None:
        self.errors: list[str] = []
        self.types: dict[str, str] = {}
        self.family_order: list[str] = []
        self.closed_families: set[str] = set()
        # histogram family -> {"buckets": [(le, value)], "count": float|None}
        self.histograms: dict[str, dict] = {}
        self.samples = 0

    def error(self, lineno: int, message: str) -> None:
        self.errors.append(f"line {lineno}: {message}")

    def family_of(self, name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            base = name.removesuffix(suffix)
            if base != name and base in self.types:
                return base
        return name

    def enter_family(self, lineno: int, family: str) -> None:
        if family in self.closed_families:
            self.error(lineno, f"family {family!r} is interleaved with "
                               "other families")
            return
        if self.family_order and self.family_order[-1] != family:
            self.closed_families.add(self.family_order[-1])
        if not self.family_order or self.family_order[-1] != family:
            self.family_order.append(family)

    def check_comment(self, lineno: int, line: str) -> None:
        parts = line.split(None, 3)
        if len(parts) < 3 or parts[1] not in ("TYPE", "HELP"):
            # Other comments are legal and ignored.
            return
        name = parts[2]
        if not METRIC_NAME.match(name):
            self.error(lineno, f"invalid metric name {name!r} in {parts[1]}")
            return
        if parts[1] == "TYPE":
            if len(parts) != 4 or parts[3] not in TYPES:
                self.error(lineno, f"invalid TYPE line for {name!r}")
                return
            if name in self.types:
                self.error(lineno, f"duplicate TYPE for {name!r}")
                return
            self.types[name] = parts[3]
            self.enter_family(lineno, name)
            if parts[3] == "histogram":
                self.histograms[name] = {"buckets": [], "count": None}

    def check_sample(self, lineno: int, line: str) -> None:
        m = SAMPLE.match(line)
        if m is None:
            self.error(lineno, f"malformed line {line!r}")
            return
        name = m.group("name")
        labels: dict[str, str] = {}
        if m.group("labels"):
            for part in self.split_labels(m.group("labels")):
                lm = LABEL.match(part.strip())
                if lm is None or not LABEL_NAME.match(lm.group("name")):
                    self.error(lineno, f"malformed label {part!r}")
                    return
                if lm.group("name") in labels:
                    self.error(lineno, f"duplicate label {lm.group('name')!r}")
                    return
                labels[lm.group("name")] = lm.group("value")
        try:
            value = parse_value(m.group("value"))
        except ValueError as err:
            self.error(lineno, str(err))
            return
        self.samples += 1

        family = self.family_of(name)
        if family not in self.types:
            self.error(lineno, f"sample {name!r} has no preceding TYPE line")
            return
        self.enter_family(lineno, family)
        kind = self.types[family]
        if kind == "counter" and (value < 0 or math.isnan(value)):
            self.error(lineno, f"counter {name!r} has value {value}")
        if kind != "histogram":
            return

        hist = self.histograms[family]
        if name == family + "_bucket":
            if "le" not in labels:
                self.error(lineno, f"{name!r} sample without an le label")
                return
            try:
                le = parse_value(labels["le"])
            except ValueError:
                self.error(lineno, f"invalid le value {labels['le']!r}")
                return
            if value < 0 or math.isnan(value):
                self.error(lineno, f"bucket {name!r} has count {value}")
            hist["buckets"].append((lineno, le, value))
        elif name == family + "_count":
            if value < 0 or math.isnan(value):
                self.error(lineno, f"{name!r} is {value}")
            hist["count"] = value

    @staticmethod
    def split_labels(text: str) -> list[str]:
        """Split on commas outside quoted label values."""
        parts, depth, current = [], False, []
        for ch in text:
            if ch == '"' and (not current or current[-1] != "\\"):
                depth = not depth
            if ch == "," and not depth:
                parts.append("".join(current))
                current = []
            else:
                current.append(ch)
        if current:
            parts.append("".join(current))
        return parts

    def finish(self) -> None:
        for family, hist in self.histograms.items():
            buckets = hist["buckets"]
            if not buckets:
                self.errors.append(f"histogram {family!r} has no _bucket "
                                   "samples")
                continue
            bounds = [le for (_, le, _) in buckets]
            if bounds != sorted(bounds):
                self.errors.append(f"histogram {family!r} buckets are not "
                                   "in ascending le order")
            if not math.isinf(bounds[-1]):
                self.errors.append(f"histogram {family!r} lacks the "
                                   'le="+Inf" bucket')
            counts = [v for (_, le, v) in buckets]
            for i in range(1, len(counts)):
                if counts[i] < counts[i - 1]:
                    self.errors.append(
                        f"histogram {family!r} buckets are not cumulative: "
                        f"count drops at le={bounds[i]}")
                    break
            if (hist["count"] is not None and buckets
                    and math.isinf(bounds[-1])
                    and counts[-1] != hist["count"]):
                self.errors.append(
                    f"histogram {family!r}: le=\"+Inf\" bucket "
                    f"({counts[-1]}) != _count ({hist['count']})")


def main() -> int:
    if len(sys.argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    if len(sys.argv) == 2 and sys.argv[1] not in ("-", "--help", "-h"):
        with open(sys.argv[1]) as fh:
            text = fh.read()
    elif len(sys.argv) == 2 and sys.argv[1] in ("--help", "-h"):
        print(__doc__)
        return 0
    else:
        text = sys.stdin.read()

    checker = Checker()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            checker.check_comment(lineno, line)
        else:
            checker.check_sample(lineno, line)
    checker.finish()

    if checker.errors:
        for err in checker.errors:
            print(f"expocheck: {err}", file=sys.stderr)
        print(f"expocheck: INVALID ({len(checker.errors)} errors in "
              f"{checker.samples} samples)", file=sys.stderr)
        return 1
    print(f"expocheck: ok ({checker.samples} samples, "
          f"{len(checker.types)} families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
