#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_*.json telemetry.

Each bench binary (bench/common/experiment_util) writes a telemetry file
``BENCH_<name>.json`` whose ``items_per_sec`` is the headline throughput
of the run. This gate compares those numbers against the checked-in
baseline ``bench/perf_baseline.json`` and fails when any gated bench
drops below ``min_ratio`` of its baseline.

The tolerance band is deliberately wide: CI runners differ in clock
speed, core count and noisiness, and the smoke-sized runs are short. The
gate exists to catch order-of-magnitude regressions (an accidentally
quadratic queue, a debug build, a lock on the hot path), not 5% drift.
Ratcheting the baseline is a deliberate act: rerun with ``--update``
on a quiet machine and commit the result.

Usage:
  tools/perf_gate.py --telemetry-dir bench-telemetry \
      [--baseline bench/perf_baseline.json] [--min-ratio 0.2] [--update] \
      [--benches name1,name2]

``--benches`` restricts the run to a comma-separated subset of baseline
entries — CI jobs that only produce some of the telemetry (the serve
smoke produces serve_throughput but not the fig3 sweeps) gate just their
own benches without tripping MISSING failures for the others. With
``--update`` the subset is merged into the existing baseline instead of
replacing it.

Environment:
  FTMC_PERF_MIN_RATIO  overrides the tolerance (and --min-ratio).

Exit codes: 0 ok, 1 regression (or telemetry missing for a gated bench),
2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path


def load_items_per_sec(path: Path) -> float | None:
    with open(path) as fh:
        doc = json.load(fh)
    value = doc.get("items_per_sec")
    if value is None:
        return None
    return float(value)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--telemetry-dir", required=True, type=Path,
                        help="directory holding BENCH_*.json files")
    parser.add_argument("--baseline", type=Path,
                        default=Path("bench/perf_baseline.json"))
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="measured/baseline must be >= this "
                             "(default: the baseline file's min_ratio)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from current telemetry "
                             "instead of gating")
    parser.add_argument("--benches", type=str, default=None,
                        help="comma-separated bench names: gate (or merge-"
                             "update) only these baseline entries")
    args = parser.parse_args()

    selected: set[str] | None = None
    if args.benches is not None:
        selected = {n.strip() for n in args.benches.split(",") if n.strip()}
        if not selected:
            print("perf_gate: --benches selected nothing", file=sys.stderr)
            return 2

    if not args.telemetry_dir.is_dir():
        print(f"perf_gate: no such telemetry dir: {args.telemetry_dir}",
              file=sys.stderr)
        return 2

    measured: dict[str, float] = {}
    for path in sorted(args.telemetry_dir.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        value = load_items_per_sec(path)
        if value is not None:
            measured[name] = value

    if selected is not None:
        measured = {k: v for k, v in measured.items() if k in selected}

    if args.update:
        doc = {
            "_comment": "Perf-regression baseline for tools/perf_gate.py: "
                        "items_per_sec per bench at CI smoke sizes. "
                        "Regenerate with tools/perf_gate.py --update.",
            "min_ratio": 0.2,
            "items_per_sec": {k: round(v, 1) for k, v in
                              sorted(measured.items())},
        }
        if args.baseline.exists():
            old = json.loads(args.baseline.read_text())
            doc["_comment"] = old.get("_comment", doc["_comment"])
            doc["min_ratio"] = old.get("min_ratio", doc["min_ratio"])
            if selected is not None:
                merged = dict(old.get("items_per_sec", {}))
                merged.update(doc["items_per_sec"])
                doc["items_per_sec"] = dict(sorted(merged.items()))
        args.baseline.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"perf_gate: baseline updated with {len(measured)} benches "
              f"-> {args.baseline}")
        return 0

    if not args.baseline.exists():
        print(f"perf_gate: no baseline at {args.baseline} "
              "(run with --update to create one)", file=sys.stderr)
        return 2
    baseline_doc = json.loads(args.baseline.read_text())
    baseline: dict[str, float] = baseline_doc.get("items_per_sec", {})
    if selected is not None:
        missing = selected - set(baseline)
        if missing:
            print(f"perf_gate: --benches names not in the baseline: "
                  f"{', '.join(sorted(missing))}", file=sys.stderr)
            return 2
        baseline = {k: v for k, v in baseline.items() if k in selected}
    if not baseline:
        print("perf_gate: baseline gates no benches", file=sys.stderr)
        return 2

    min_ratio = baseline_doc.get("min_ratio", 0.2)
    if args.min_ratio is not None:
        min_ratio = args.min_ratio
    env_ratio = os.environ.get("FTMC_PERF_MIN_RATIO")
    if env_ratio is not None:
        min_ratio = float(env_ratio)
    if not 0.0 < min_ratio <= 1.0:
        print(f"perf_gate: nonsensical min ratio {min_ratio}",
              file=sys.stderr)
        return 2

    failures = []
    width = max(len(n) for n in baseline)
    print(f"perf_gate: min ratio {min_ratio:.2f} "
          f"(baseline {args.baseline})")
    for name, base in sorted(baseline.items()):
        got = measured.get(name)
        if got is None:
            print(f"  {name:<{width}}  MISSING telemetry "
                  f"(expected {args.telemetry_dir}/BENCH_{name}.json)")
            failures.append(name)
            continue
        ratio = got / base if base > 0 else float("inf")
        verdict = "ok" if ratio >= min_ratio else "REGRESSION"
        print(f"  {name:<{width}}  {got:>12.1f} items/s  "
              f"baseline {base:>12.1f}  ratio {ratio:5.2f}  {verdict}")
        if ratio < min_ratio:
            failures.append(name)
    for name in sorted(set(measured) - set(baseline)):
        print(f"  {name:<{width}}  {measured[name]:>12.1f} items/s  "
              "(ungated; add via --update)")

    if failures:
        print(f"perf_gate: FAILED for {', '.join(sorted(failures))}",
              file=sys.stderr)
        return 1
    print("perf_gate: all gated benches within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
