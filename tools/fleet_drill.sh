#!/usr/bin/env bash
# Fleet crash drill (CI: the fleet job; see docs/campaigns.md).
#
# Proves the coordinator/worker failure model end to end with real
# processes and a real kill -9:
#
#   1. control: a single-process `ftmc_campaign run` of a tiny spec;
#   2. drill: a coordinator plus a deliberately throttled "victim"
#      worker that is SIGKILLed mid-lease, after which two healthy
#      workers finish the campaign — the victim's lease must expire and
#      be reissued (asserted from fleet.* telemetry), the coordinator
#      must exit 0, and journal.jsonl + results.json must be
#      byte-identical to the control run;
#   3. fleet smoke: `run --fleet 4` (four forked local workers) must
#      reproduce the same bytes again.
#
# Usage: tools/fleet_drill.sh [path/to/ftmc_campaign] [workdir]
set -euo pipefail

BIN=${1:-build/bin/ftmc_campaign}
WORK=${2:-fleet-drill}

rm -rf "$WORK"
mkdir -p "$WORK"

cat > "$WORK/spec.json" <<'EOF'
{
  "name": "drill",
  "schedulers": ["edf_vd_killing"],
  "failure_probs": [1e-3, 1e-5],
  "utilizations": [0.3, 0.5, 0.7, 0.9],
  "sets_per_point": 5,
  "seed": 20140601
}
EOF

echo "== control: single-process run"
"$BIN" run --spec "$WORK/spec.json" --out "$WORK/control" --threads 2 \
  > "$WORK/control.log"

echo "== drill: coordinator + victim (kill -9 mid-lease) + 2 workers"
FTMC_BENCH_DIR="$WORK" \
  "$BIN" coordinate --spec "$WORK/spec.json" --out "$WORK/drill" \
  --port-file "$WORK/port" --lease-cells 2 --lease-ttl-ms 2000 \
  --linger-ms 5000 > "$WORK/coordinator.log" 2>&1 &
COORD=$!

for _ in $(seq 1 100); do
  [ -s "$WORK/port" ] && break
  sleep 0.1
done
PORT=$(cat "$WORK/port")
test -n "$PORT"

# The victim computes one cell per 300 ms, so its leases (2 cells each)
# take >= 600 ms; the whole grid would take it >= 2.4 s. Killing it at
# 1 s therefore provably interrupts an outstanding lease.
"$BIN" worker --connect "127.0.0.1:$PORT" --name victim \
  --throttle-ms 300 > "$WORK/victim.log" 2>&1 &
VICTIM=$!
sleep 1
kill -9 "$VICTIM" 2> /dev/null

"$BIN" worker --connect "127.0.0.1:$PORT" --name w1 \
  > "$WORK/w1.log" 2>&1 &
W1=$!
"$BIN" worker --connect "127.0.0.1:$PORT" --name w2 \
  > "$WORK/w2.log" 2>&1 &
W2=$!

wait "$COORD"
wait "$W1"
wait "$W2"

echo "== drill: byte-identity and lease-expiry assertions"
cmp "$WORK/control/journal.jsonl" "$WORK/drill/journal.jsonl"
cmp "$WORK/control/results.json" "$WORK/drill/results.json"
python3 - "$WORK/BENCH_fleet.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["metrics"]["counters"]
expired = counters["fleet.leases_expired"]
reissued = counters["fleet.leases_reissued"]
accepted = counters["fleet.records_accepted"]
assert expired >= 1, f"victim's lease must expire, got {expired}"
assert reissued >= 1, f"expired cells must be reissued, got {reissued}"
assert accepted == 8, f"all 8 cells must merge exactly once, got {accepted}"
print(f"drill telemetry: expired={expired} reissued={reissued} "
      f"accepted={accepted}")
EOF

echo "== fleet smoke: run --fleet 4"
mkdir -p "$WORK/fleet4-bench"
FTMC_BENCH_DIR="$WORK/fleet4-bench" "$BIN" run --spec "$WORK/spec.json" \
  --out "$WORK/fleet4" --threads 1 --fleet 4 --lease-cells 3 \
  > "$WORK/fleet4.log" 2>&1
cmp "$WORK/control/journal.jsonl" "$WORK/fleet4/journal.jsonl"
cmp "$WORK/control/results.json" "$WORK/fleet4/results.json"

# The atomic-write path must leave no staging files behind anywhere.
test -z "$(find "$WORK" -name '*.tmp')"

echo "fleet drill: OK"
