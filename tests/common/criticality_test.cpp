#include "ftmc/common/criticality.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ftmc {
namespace {

TEST(Criticality, DalOrderingAIsMostCritical) {
  EXPECT_TRUE(more_critical(Dal::A, Dal::B));
  EXPECT_TRUE(more_critical(Dal::B, Dal::C));
  EXPECT_TRUE(more_critical(Dal::C, Dal::D));
  EXPECT_TRUE(more_critical(Dal::D, Dal::E));
  EXPECT_TRUE(more_critical(Dal::A, Dal::E));
  EXPECT_FALSE(more_critical(Dal::E, Dal::A));
  EXPECT_FALSE(more_critical(Dal::B, Dal::B));
}

TEST(Criticality, SafetyRelatedLevels) {
  // DO-178B: A, B, C carry quantified requirements; D and E do not
  // (paper Sec. 2.1).
  EXPECT_TRUE(is_safety_related(Dal::A));
  EXPECT_TRUE(is_safety_related(Dal::B));
  EXPECT_TRUE(is_safety_related(Dal::C));
  EXPECT_FALSE(is_safety_related(Dal::D));
  EXPECT_FALSE(is_safety_related(Dal::E));
}

TEST(Criticality, DalRoundTripThroughStrings) {
  for (const Dal dal : kAllDals) {
    const auto parsed = parse_dal(to_string(dal));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, dal);
  }
}

TEST(Criticality, ParseDalIsCaseInsensitive) {
  EXPECT_EQ(parse_dal("a"), Dal::A);
  EXPECT_EQ(parse_dal("b"), Dal::B);
  EXPECT_EQ(parse_dal("E"), Dal::E);
}

TEST(Criticality, ParseDalRejectsGarbage) {
  EXPECT_FALSE(parse_dal("").has_value());
  EXPECT_FALSE(parse_dal("F").has_value());
  EXPECT_FALSE(parse_dal("AB").has_value());
  EXPECT_FALSE(parse_dal("1").has_value());
}

TEST(Criticality, ParseCritLevel) {
  EXPECT_EQ(parse_crit_level("HI"), CritLevel::HI);
  EXPECT_EQ(parse_crit_level("lo"), CritLevel::LO);
  EXPECT_EQ(parse_crit_level("high"), CritLevel::HI);
  EXPECT_EQ(parse_crit_level("LOW"), CritLevel::LO);
  EXPECT_FALSE(parse_crit_level("MED").has_value());
}

TEST(Criticality, StreamOutput) {
  std::ostringstream os;
  os << Dal::B << "/" << CritLevel::HI << "/" << CritLevel::LO;
  EXPECT_EQ(os.str(), "B/HI/LO");
}

TEST(DualCriticalityMapping, ValidRequiresStrictOrder) {
  EXPECT_TRUE((DualCriticalityMapping{Dal::B, Dal::C}).valid());
  EXPECT_TRUE((DualCriticalityMapping{Dal::A, Dal::E}).valid());
  EXPECT_FALSE((DualCriticalityMapping{Dal::C, Dal::C}).valid());
  EXPECT_FALSE((DualCriticalityMapping{Dal::D, Dal::B}).valid());
}

TEST(DualCriticalityMapping, DalOfRoles) {
  const DualCriticalityMapping m{Dal::B, Dal::D};
  EXPECT_EQ(m.dal_of(CritLevel::HI), Dal::B);
  EXPECT_EQ(m.dal_of(CritLevel::LO), Dal::D);
}

}  // namespace
}  // namespace ftmc
