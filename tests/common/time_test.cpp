#include "ftmc/common/time.hpp"

#include <gtest/gtest.h>

namespace ftmc {
namespace {

TEST(Time, HoursToMillis) {
  EXPECT_DOUBLE_EQ(hours_to_millis(1.0), 3'600'000.0);
  EXPECT_DOUBLE_EQ(hours_to_millis(10.0), 36'000'000.0);
  EXPECT_DOUBLE_EQ(hours_to_millis(0.5), 1'800'000.0);
}

TEST(Time, TickConversionRoundTrip) {
  EXPECT_EQ(sim::millis_to_ticks(1.0), 1'000);
  EXPECT_EQ(sim::millis_to_ticks(0.001), 1);
  EXPECT_EQ(sim::millis_to_ticks(60.0), 60'000);
  EXPECT_DOUBLE_EQ(sim::ticks_to_millis(60'000), 60.0);
  EXPECT_DOUBLE_EQ(sim::ticks_to_millis(1), 0.001);
}

TEST(Time, TickConversionRoundsToNearest) {
  // 0.0004 ms = 0.4 us rounds down; 0.0006 ms = 0.6 us rounds up.
  EXPECT_EQ(sim::millis_to_ticks(0.0004), 0);
  EXPECT_EQ(sim::millis_to_ticks(0.0006), 1);
}

TEST(Time, HourInTicks) {
  EXPECT_EQ(sim::kTicksPerHour, 3'600'000'000LL);
  EXPECT_EQ(sim::millis_to_ticks(kMillisPerHour), sim::kTicksPerHour);
}

TEST(Time, OneHourHorizonFitsExactlyInDouble) {
  // The analysis relies on t = O_S hours being exactly representable.
  const Millis t = hours_to_millis(10.0);
  EXPECT_EQ(t, 36'000'000.0);
  EXPECT_EQ(t + 1.0 - t, 1.0);  // integer-exact arithmetic at this scale
}

}  // namespace
}  // namespace ftmc
