#include "ftmc/common/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ftmc {
namespace {

TEST(Contracts, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(FTMC_EXPECTS(1 + 1 == 2, "arithmetic"));
}

TEST(Contracts, FailingConditionThrowsContractViolation) {
  EXPECT_THROW(FTMC_EXPECTS(false, "always fails"), ContractViolation);
}

TEST(Contracts, MessageContainsContextAndExpression) {
  try {
    FTMC_EXPECTS(2 < 1, "two is not less than one");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos);
  }
}

TEST(Contracts, ContractViolationIsLogicError) {
  // Callers may catch std::logic_error to distinguish model errors from
  // environmental failures.
  EXPECT_THROW(FTMC_EXPECTS(false, "x"), std::logic_error);
}

TEST(Contracts, EnsuresBehavesLikeExpects) {
  EXPECT_NO_THROW(FTMC_ENSURES(true, "ok"));
  EXPECT_THROW(FTMC_ENSURES(false, "bad"), ContractViolation);
}

}  // namespace
}  // namespace ftmc
