/// \file server_test.cpp
/// \brief Request-engine tests: schema handling, the answer cache, and
///        the determinism contract (server answers are bit-identical to
///        serial local analysis for every thread count / cache state).
#include "ftmc/serve/server.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "ftmc/campaign/runner.hpp"
#include "ftmc/campaign/spec.hpp"
#include "ftmc/core/ft_scheduler.hpp"
#include "ftmc/io/json.hpp"
#include "ftmc/obs/exposition.hpp"
#include "ftmc/obs/registry.hpp"
#include "ftmc/serve/expose.hpp"
#include "ftmc/taskgen/generator.hpp"

namespace ftmc::serve {
namespace {

/// A deterministic Appendix-C task set as JSON (the wire form).
[[nodiscard]] std::string task_set_json(std::uint64_t seed,
                                        double utilization = 0.4) {
  taskgen::GeneratorParams params;
  params.target_utilization = utilization;
  taskgen::Rng rng(seed);
  return io::task_set_to_json(taskgen::generate_task_set(params, rng));
}

[[nodiscard]] std::string fts_query(const std::string& task_set,
                                    const std::string& scheduler =
                                        "edf_vd_killing") {
  return io::json::Object{}
      .add_string("query", "fts")
      .add_string("scheduler", scheduler)
      .add_raw("task_set", task_set)
      .str();
}

[[nodiscard]] std::string analyze_request(
    const std::vector<std::string>& queries) {
  return io::json::Object{}
      .add_string("type", "analyze")
      .add_raw("queries", io::json::array(queries))
      .str();
}

/// The response from `"results":` to the end — the part the
/// determinism contract covers (everything but count/cache_hits).
[[nodiscard]] std::string results_slice(const std::string& response) {
  const auto pos = response.find("\"results\":");
  EXPECT_NE(pos, std::string::npos) << response;
  return response.substr(pos);
}

TEST(Server, AnswersPing) {
  Server server;
  // No trace_id in the request: the server synthesizes one ("t-<n>",
  // starting at 0) and reports it right after the type.
  EXPECT_EQ(server.handle("{\"type\":\"ping\"}"),
            "{\"type\":\"pong\",\"trace_id\":\"t-0\"}");
}

TEST(Server, EchoesTheCallersTraceId) {
  Server server;
  EXPECT_EQ(server.handle("{\"type\":\"ping\",\"trace_id\":\"req-42\"}"),
            "{\"type\":\"pong\",\"trace_id\":\"req-42\"}");
  // Synthesized IDs keep counting across requests.
  EXPECT_EQ(server.handle("{\"type\":\"ping\"}"),
            "{\"type\":\"pong\",\"trace_id\":\"t-0\"}");
  EXPECT_EQ(server.handle("{\"type\":\"ping\"}"),
            "{\"type\":\"pong\",\"trace_id\":\"t-1\"}");
}

TEST(Server, ErrorResponsesCarryTheTraceId) {
  Server server;
  const auto doc = io::json::parse(
      server.handle("{\"type\":\"launch\",\"trace_id\":\"oops-1\"}"));
  EXPECT_EQ(doc.at("type").as_string(), "error");
  EXPECT_EQ(doc.at("trace_id").as_string(), "oops-1");
}

TEST(Server, MetricsRequestReturnsRegistrySnapshot) {
  Server server;
  const std::string response = server.handle("{\"type\":\"metrics\"}");
  const auto doc = io::json::parse(response);
  EXPECT_EQ(doc.at("type").as_string(), "metrics");
  // The serve counters registered in the global registry must appear
  // once obs is enabled; when disabled the snapshot is a valid
  // (possibly empty) object either way — parseability is the contract.
  (void)doc.at("metrics");
}

TEST(Server, ShutdownRequestSetsFlagAndAnswersBye) {
  Server server;
  EXPECT_FALSE(server.shutdown_requested());
  EXPECT_EQ(server.handle("{\"type\":\"shutdown\"}"),
            "{\"type\":\"bye\",\"trace_id\":\"t-0\"}");
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(Server, MalformedJsonAnswersErrorNotThrow) {
  Server server;
  const std::string response = server.handle("{\"type\":");
  const auto doc = io::json::parse(response);
  EXPECT_EQ(doc.at("type").as_string(), "error");
}

TEST(Server, UnknownTypeAnswersError) {
  Server server;
  const auto doc = io::json::parse(server.handle("{\"type\":\"launch\"}"));
  EXPECT_EQ(doc.at("type").as_string(), "error");
}

TEST(Server, AnalyzeWithoutQueriesAnswersError) {
  Server server;
  const auto doc = io::json::parse(server.handle("{\"type\":\"analyze\"}"));
  EXPECT_EQ(doc.at("type").as_string(), "error");
}

// The core property: a served FT-S answer is byte-for-byte the JSON of
// the same analysis run locally. No server-side floating-point detour,
// no reordering, no reformatting.
TEST(Server, FtsAnswerIsBitIdenticalToLocalAnalysis) {
  const std::string ts_json = task_set_json(7);
  const core::FtTaskSet ts =
      io::task_set_from_json(io::json::parse(ts_json));
  core::FtsConfig config;
  config.test = campaign::make_fts_test(campaign::Scheduler::kEdfVdKilling);
  const std::string local =
      io::fts_result_to_json(core::ft_schedule(ts, config));

  Server server;
  const std::string response =
      server.handle(analyze_request({fts_query(ts_json)}));
  const std::string expected_item = io::json::Object{}
                                        .add_bool("ok", true)
                                        .add_string("query", "fts")
                                        .add_raw("answer", local)
                                        .str();
  const std::string expected = io::json::Object{}
                                   .add_string("type", "result")
                                   .add_string("trace_id", "t-0")
                                   .add_int("count", 1)
                                   .add_int("cache_hits", 0)
                                   .add_raw("results",
                                            io::json::array({expected_item}))
                                   .str();
  EXPECT_EQ(response, expected);
}

TEST(Server, ResultsAreIdenticalForEveryThreadCount) {
  std::vector<std::string> queries;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    queries.push_back(
        fts_query(task_set_json(seed, 0.3 + 0.05 * double(seed % 5))));
  }
  const std::string request = analyze_request(queries);

  ServerOptions serial;
  serial.threads = 1;
  Server server_serial(serial);
  ServerOptions wide;
  wide.threads = 4;
  Server server_wide(wide);
  // Fresh servers, empty caches: the full responses (cache_hits
  // included) must match byte for byte.
  EXPECT_EQ(server_serial.handle(request), server_wide.handle(request));
}

TEST(Server, WarmCacheChangesOnlyCacheHits) {
  std::vector<std::string> queries;
  for (std::uint64_t seed = 20; seed <= 25; ++seed) {
    queries.push_back(fts_query(task_set_json(seed)));
  }
  const std::string request = analyze_request(queries);
  Server server;
  const std::string cold = server.handle(request);
  const std::string warm = server.handle(request);
  EXPECT_EQ(io::json::parse(cold).at("cache_hits").as_uint64(), 0u);
  EXPECT_EQ(io::json::parse(warm).at("cache_hits").as_uint64(),
            queries.size());
  // The determinism contract: the results array is a pure function of
  // the request — cached answers are the same bytes as computed ones.
  EXPECT_EQ(results_slice(cold), results_slice(warm));
}

TEST(Server, BadQueryDoesNotPoisonItsNeighbors) {
  const std::string good = fts_query(task_set_json(3));
  const std::string bad =
      "{\"query\":\"fts\",\"scheduler\":\"round_robin\",\"task_set\":" +
      task_set_json(3) + "}";
  Server server;
  const auto doc =
      io::json::parse(server.handle(analyze_request({bad, good, bad})));
  ASSERT_EQ(doc.at("type").as_string(), "result");
  const auto& results = doc.at("results").items();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].at("ok").as_bool());
  EXPECT_TRUE(results[1].at("ok").as_bool());
  EXPECT_FALSE(results[2].at("ok").as_bool());
  EXPECT_NE(results[0].at("error").as_string().find("round_robin"),
            std::string::npos);
}

TEST(Server, UnknownQueryKeyIsRejectedPerQuery) {
  Server server;
  const std::string query =
      "{\"query\":\"fts\",\"bogus\":1,\"task_set\":" + task_set_json(3) +
      "}";
  const auto doc = io::json::parse(server.handle(analyze_request({query})));
  const auto& results = doc.at("results").items();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].at("ok").as_bool());
}

TEST(Server, SweepQueryAnswersProfilePoints) {
  Server server;
  const std::string query = io::json::Object{}
                                .add_string("query", "sweep")
                                .add_raw("task_set", task_set_json(5))
                                .str();
  const auto doc = io::json::parse(server.handle(analyze_request({query})));
  const auto& results = doc.at("results").items();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].at("ok").as_bool());
  const auto& answer = results[0].at("answer");
  EXPECT_GE(answer.at("n_hi").as_uint64(), 1u);
  EXPECT_GE(answer.at("points").items().size(), 1u);
}

TEST(Server, SensitivityQueryAnswersScaling) {
  Server server;
  const std::string query =
      io::json::Object{}
          .add_string("query", "sensitivity")
          .add_string("scheduler", "amc_rtb")
          .add_raw("task_set", task_set_json(5, 0.3))
          .str();
  const auto doc = io::json::parse(server.handle(analyze_request({query})));
  const auto& results = doc.at("results").items();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].at("ok").as_bool());
  const auto& answer = results[0].at("answer");
  (void)answer.at("fts");
  (void)answer.at("max_wcet_scaling").as_number();
  (void)answer.at("schedulable_as_given").as_bool();
}

TEST(Server, DegradationFactorIsValidated) {
  Server server;
  const std::string query = io::json::Object{}
                                .add_string("query", "fts")
                                .add_string("scheduler",
                                            "edf_vd_degradation")
                                .add_number("degradation_factor", 0.5)
                                .add_raw("task_set", task_set_json(5))
                                .str();
  const auto doc = io::json::parse(server.handle(analyze_request({query})));
  EXPECT_FALSE(doc.at("results").items()[0].at("ok").as_bool());
}

// The cache key canonicalizes result-irrelevant fields away: for a
// killing-family scheduler the degradation factor does not influence
// the analysis, so two queries differing only there must share a cache
// entry (second request = pure hits).
TEST(Server, CacheKeyNormalizesIrrelevantDegradationFactor) {
  const std::string ts = task_set_json(9);
  auto query_with_df = [&](double df) {
    return io::json::Object{}
        .add_string("query", "fts")
        .add_string("scheduler", "edf_vd_killing")
        .add_number("degradation_factor", df)
        .add_raw("task_set", ts)
        .str();
  };
  Server server;
  const auto first = io::json::parse(
      server.handle(analyze_request({query_with_df(2.0)})));
  const auto second = io::json::parse(
      server.handle(analyze_request({query_with_df(8.0)})));
  EXPECT_EQ(first.at("cache_hits").as_uint64(), 0u);
  EXPECT_EQ(second.at("cache_hits").as_uint64(), 1u);
}

TEST(Server, AdmitQueryReportsPerTaskVerdictsAndAuditTrail) {
  Server server;
  const std::string query = io::json::Object{}
                                .add_string("query", "admit")
                                .add_string("scheduler", "edf_vd_killing")
                                .add_int("n_hi", 2)
                                .add_int("n_lo", 2)
                                .add_int("n_adapt", 1)
                                .add_raw("task_set", task_set_json(5, 0.3))
                                .str();
  const auto doc = io::json::parse(server.handle(analyze_request({query})));
  const auto& results = doc.at("results").items();
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].at("ok").as_bool()) << results[0].at("error")
                                                    .as_string();
  const auto& answer = results[0].at("answer");
  (void)answer.at("admitted").as_bool();
  (void)answer.at("vd_schedulable").as_bool();
  EXPECT_GT(answer.at("x").as_number(), 0.0);
  const auto& tasks = answer.at("tasks").items();
  ASSERT_GE(tasks.size(), 1u);
  // One admission verdict in the black-box audit trail per task, in
  // submission order, each either "admit" or "reject" — and a rejected
  // task must carry its reason.
  const auto& records = answer.at("blackbox").items();
  ASSERT_EQ(records.size(), tasks.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].at("seq").as_uint64(), i);
    const std::string kind = records[i].at("kind").as_string();
    EXPECT_TRUE(kind == "admit" || kind == "reject") << kind;
    EXPECT_EQ(kind == "admit", tasks[i].at("admitted").as_bool());
    if (kind == "reject") {
      EXPECT_FALSE(tasks[i].at("reason").as_string().empty());
    }
  }
}

TEST(Server, AdmitQueryValidatesItsProfile) {
  Server server;
  // n_adapt >= n_hi is not a valid re-execution profile.
  const std::string query = io::json::Object{}
                                .add_string("query", "admit")
                                .add_int("n_hi", 2)
                                .add_int("n_adapt", 2)
                                .add_raw("task_set", task_set_json(5))
                                .str();
  const auto doc = io::json::parse(server.handle(analyze_request({query})));
  EXPECT_FALSE(doc.at("results").items()[0].at("ok").as_bool());
}

TEST(Server, ExposeAnswersPrometheusText) {
  Server server;
  const auto doc = io::json::parse(server.handle("{\"type\":\"expose\"}"));
  EXPECT_EQ(doc.at("type").as_string(), "expose");
  EXPECT_EQ(doc.at("content_type").as_string(),
            "text/plain; version=0.0.4; charset=utf-8");
  const std::string body = doc.at("body").as_string();
  // The global registry may be disabled (empty body) or enabled via
  // FTMC_OBS; either way the body must never leak the JSON snapshot's
  // "inf" spellings and every TYPE line must name a known type.
  EXPECT_EQ(body.find("\"inf\""), std::string::npos) << body;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    const bool known = line.find(" counter") != std::string::npos ||
                       line.find(" gauge") != std::string::npos ||
                       line.find(" histogram") != std::string::npos;
    EXPECT_TRUE(known) << line;
  }
}

TEST(Server, SnapshotFromJsonRoundTripsTheRegistry) {
  obs::Registry reg(/*enabled=*/true);
  reg.counter("trip.count").inc(7);
  reg.gauge("trip.gauge").set(2.5);
  reg.gauge("trip.inf").set(std::numeric_limits<double>::infinity());
  obs::Histogram h = reg.histogram("trip.lat", {1.0, 10.0});
  h.observe(0.5);
  h.observe(100.0);

  const obs::Snapshot original = reg.snapshot();
  const obs::Snapshot rebuilt =
      snapshot_from_json(io::json::parse(reg.snapshot_json()));

  ASSERT_EQ(rebuilt.counters.size(), original.counters.size());
  EXPECT_EQ(rebuilt.counters, original.counters);
  ASSERT_EQ(rebuilt.gauges.size(), original.gauges.size());
  for (std::size_t i = 0; i < original.gauges.size(); ++i) {
    EXPECT_EQ(rebuilt.gauges[i].first, original.gauges[i].first);
    EXPECT_EQ(rebuilt.gauges[i].second, original.gauges[i].second);
  }
  ASSERT_EQ(rebuilt.histograms.size(), original.histograms.size());
  for (std::size_t i = 0; i < original.histograms.size(); ++i) {
    const obs::HistogramSnapshot& a = original.histograms[i];
    const obs::HistogramSnapshot& b = rebuilt.histograms[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.bounds, a.bounds);
    EXPECT_EQ(b.counts, a.counts);
    EXPECT_EQ(b.count, a.count);
    EXPECT_DOUBLE_EQ(b.sum, a.sum);
  }
  // The rebuilt snapshot renders the same exposition text — this is the
  // --obs-export path (BENCH_*.json in, Prometheus text out).
  EXPECT_EQ(obs::to_prometheus(rebuilt), obs::to_prometheus(original));
}

TEST(Server, SnapshotFromJsonRejectsInconsistentHistograms) {
  // counts must have bounds.size()+1 entries and sum to count.
  EXPECT_THROW(
      (void)snapshot_from_json(io::json::parse(
          R"({"counters":{},"gauges":{},"histograms":{)"
          R"("h":{"count":2,"sum":1.0,"bounds":[1.0],"counts":[1]}}})")),
      std::exception);
  EXPECT_THROW(
      (void)snapshot_from_json(io::json::parse(
          R"({"counters":{},"gauges":{},"histograms":{)"
          R"("h":{"count":5,"sum":1.0,"bounds":[1.0],"counts":[1,1]}}})")),
      std::exception);
}

TEST(Server, BoundedCacheDeclinesButStaysCorrect) {
  ServerOptions options;
  options.cache_entries = 1;
  Server server(options);
  const std::string q1 = fts_query(task_set_json(31));
  const std::string q2 = fts_query(task_set_json(32));
  const std::string r1 = server.handle(analyze_request({q1}));
  (void)server.handle(analyze_request({q2}));  // declined by the cache
  // q2 is recomputed every time, q1 stays cached; answers never change.
  const std::string r1_again = server.handle(analyze_request({q1}));
  EXPECT_EQ(results_slice(r1), results_slice(r1_again));
  EXPECT_EQ(io::json::parse(r1_again).at("cache_hits").as_uint64(), 1u);
}

}  // namespace
}  // namespace ftmc::serve
