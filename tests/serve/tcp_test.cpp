/// \file tcp_test.cpp
/// \brief Transport tests against a real loopback listener: round
///        trips, concurrent clients, protocol violations, shutdown.
///
/// Each fixture binds an ephemeral port (port 0) so parallel ctest
/// invocations never collide.
#include "ftmc/serve/tcp.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ftmc/io/json.hpp"
#include "ftmc/serve/client.hpp"
#include "ftmc/serve/server.hpp"

namespace ftmc::serve {
namespace {

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.max_frame_bytes = 1u << 16;  // small cap: cheap to violate
    engine_ = std::make_unique<Server>(options);
    listener_ = std::make_unique<TcpServer>(*engine_, TcpOptions{});
    accept_thread_ = std::thread([this] { listener_->serve(); });
  }

  void TearDown() override {
    listener_->stop();
    accept_thread_.join();
  }

  [[nodiscard]] Client connect() {
    return Client("127.0.0.1", listener_->port());
  }

  std::unique_ptr<Server> engine_;
  std::unique_ptr<TcpServer> listener_;
  std::thread accept_thread_;
};

TEST_F(TcpTest, PingRoundTrip) {
  Client client = connect();
  EXPECT_EQ(client.call("{\"type\":\"ping\",\"trace_id\":\"t\"}"),
            "{\"type\":\"pong\",\"trace_id\":\"t\"}");
}

TEST_F(TcpTest, MultipleRequestsOnOneConnection) {
  Client client = connect();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client.call("{\"type\":\"ping\",\"trace_id\":\"t\"}"),
              "{\"type\":\"pong\",\"trace_id\":\"t\"}");
  }
}

TEST_F(TcpTest, ConcurrentClientsAllGetAnswers) {
  constexpr int kClients = 8;
  constexpr int kCallsEach = 5;
  std::vector<std::thread> threads;
  std::vector<int> ok(kClients, 0);
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &ok] {
      Client client = connect();
      for (int i = 0; i < kCallsEach; ++i) {
        if (client.call("{\"type\":\"ping\",\"trace_id\":\"t\"}") ==
            "{\"type\":\"pong\",\"trace_id\":\"t\"}") {
          ++ok[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(ok[c], kCallsEach);
}

TEST_F(TcpTest, MalformedBodyKeepsConnectionAlive) {
  Client client = connect();
  const auto doc = io::json::parse(client.call("this is not json"));
  EXPECT_EQ(doc.at("type").as_string(), "error");
  // Body-level errors are per-request; the connection stays usable.
  EXPECT_EQ(client.call("{\"type\":\"ping\",\"trace_id\":\"t\"}"),
            "{\"type\":\"pong\",\"trace_id\":\"t\"}");
}

TEST_F(TcpTest, OversizedFrameAnswersErrorAndCloses) {
  Client client = connect();
  // Length claim above the server's 64 KiB cap, no body.
  std::string header;
  header += '\x00';
  header += '\x10';  // 0x00100000 = 1 MiB
  header += '\x00';
  header += '\x00';
  client.send_raw(header);
  const auto doc = io::json::parse(client.read_response());
  EXPECT_EQ(doc.at("type").as_string(), "error");
  // A framing violation is unrecoverable: the server hangs up.
  EXPECT_THROW((void)client.read_response(), std::runtime_error);
}

TEST_F(TcpTest, AnalyzeOverTcpMatchesInProcessEngine) {
  const std::string request =
      "{\"type\":\"analyze\",\"queries\":[{\"query\":\"fts\","
      "\"task_set\":{\"hi_dal\":\"A\",\"lo_dal\":\"C\",\"tasks\":["
      "{\"name\":\"t1\",\"period_ms\":100,\"wcet_ms\":10,\"dal\":\"A\","
      "\"failure_prob\":1e-6}]}}]}";
  // A fresh engine with the same options answers identically — the
  // transport adds framing, never content (cache_hits: both cold).
  ServerOptions options;
  options.max_frame_bytes = 1u << 16;
  Server local(options);
  Client client = connect();
  EXPECT_EQ(client.call(request), local.handle(request));
}

TEST_F(TcpTest, ShutdownRequestStopsTheListener) {
  Client client = connect();
  EXPECT_EQ(client.call("{\"type\":\"shutdown\",\"trace_id\":\"t\"}"),
            "{\"type\":\"bye\",\"trace_id\":\"t\"}");
  // serve() must return on its own now; TearDown's stop() is then a
  // no-op. Joining here (with a deadline enforced by ctest timeouts)
  // is the assertion.
  accept_thread_.join();
  EXPECT_TRUE(engine_->shutdown_requested());
  accept_thread_ = std::thread([] {});  // keep TearDown's join valid
}

TEST(TcpServer, BindsEphemeralPortAndReportsIt) {
  Server engine;
  TcpServer listener(engine, TcpOptions{});
  EXPECT_GT(listener.port(), 0);
}

TEST(TcpServer, RejectsBadBindAddress) {
  Server engine;
  TcpOptions options;
  options.bind_address = "not-an-address";
  EXPECT_THROW(TcpServer(engine, options), std::runtime_error);
}

TEST(TcpServer, TruncatedStreamIsCountedNotFatal) {
  Server engine;
  TcpServer listener(engine, TcpOptions{});
  std::thread accept_thread([&] { listener.serve(); });
  {
    Client client("127.0.0.1", listener.port());
    std::string partial;
    partial += '\x00';
    partial += '\x00';
    partial += '\x00';
    partial += '\x08';
    partial += "ab";  // 2 of 8 promised bytes, then EOF
    client.send_raw(partial);
  }  // destructor closes the socket mid-frame
  // The server must survive the truncated stream and keep serving.
  Client client("127.0.0.1", listener.port());
  EXPECT_EQ(client.call("{\"type\":\"ping\",\"trace_id\":\"t\"}"),
            "{\"type\":\"pong\",\"trace_id\":\"t\"}");
  listener.stop();
  accept_thread.join();
}

}  // namespace
}  // namespace ftmc::serve
