/// \file protocol_test.cpp
/// \brief Framing-layer tests: encode/decode round trips, incremental
///        feeds, malformed and oversized frames.
#include "ftmc/serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ftmc::serve {
namespace {

TEST(Protocol, EncodePrefixesBigEndianLength) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(frame[0], '\x00');
  EXPECT_EQ(frame[1], '\x00');
  EXPECT_EQ(frame[2], '\x00');
  EXPECT_EQ(frame[3], '\x03');
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(Protocol, RoundTripsOneFrame) {
  FrameDecoder decoder;
  decoder.feed(encode_frame("{\"type\":\"ping\"}"));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"type\":\"ping\"}");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.idle());
}

TEST(Protocol, RoundTripsEmptyPayload) {
  FrameDecoder decoder;
  decoder.feed(encode_frame(""));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "");
  EXPECT_TRUE(decoder.idle());
}

TEST(Protocol, DecodesByteAtATime) {
  // TCP is a byte stream: a frame may arrive in arbitrarily small
  // pieces. Every prefix short of the full frame must yield nothing.
  const std::string frame = encode_frame("hello");
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.feed(std::string_view(&frame[i], 1));
    EXPECT_FALSE(decoder.next().has_value()) << "byte " << i;
    EXPECT_FALSE(decoder.idle());
  }
  decoder.feed(std::string_view(&frame.back(), 1));
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello");
  EXPECT_TRUE(decoder.idle());
}

TEST(Protocol, DecodesMultipleFramesFromOneFeed) {
  FrameDecoder decoder;
  decoder.feed(encode_frame("one") + encode_frame("two") +
               encode_frame("three"));
  EXPECT_EQ(decoder.next().value(), "one");
  EXPECT_EQ(decoder.next().value(), "two");
  EXPECT_EQ(decoder.next().value(), "three");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.idle());
}

TEST(Protocol, TruncatedBodyIsIncompleteNotAnError) {
  FrameDecoder decoder;
  const std::string frame = encode_frame("abcdef");
  decoder.feed(frame.substr(0, frame.size() - 2));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.idle());  // EOF now would be a truncated stream
}

TEST(Protocol, OversizedLengthClaimThrows) {
  // A length field above the cap must fail *before* any buffering of
  // the claimed body — that is the memory-exhaustion guard.
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  std::string header;
  header += '\x00';
  header += '\x00';
  header += '\x00';
  header += '\x11';  // 17 > 16
  decoder.feed(header);
  EXPECT_THROW((void)decoder.next(), FrameError);
}

TEST(Protocol, MaxSizedFrameIsAccepted) {
  FrameDecoder decoder(/*max_frame_bytes=*/8);
  decoder.feed(encode_frame("12345678"));
  EXPECT_EQ(decoder.next().value(), "12345678");
}

TEST(Protocol, HighBitLengthsDecodeUnsigned) {
  // 0x80000000 must decode as 2 GiB, not a negative length.
  FrameDecoder decoder(/*max_frame_bytes=*/1u << 20);
  std::string header;
  header += static_cast<char>(0x80);
  header += '\x00';
  header += '\x00';
  header += '\x00';
  decoder.feed(header);
  EXPECT_THROW((void)decoder.next(), FrameError);
}

TEST(Protocol, PayloadMayContainArbitraryBytes) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload += static_cast<char>(i);
  FrameDecoder decoder;
  decoder.feed(encode_frame(payload));
  EXPECT_EQ(decoder.next().value(), payload);
}

}  // namespace
}  // namespace ftmc::serve
