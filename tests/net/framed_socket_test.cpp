/// \file framed_socket_test.cpp
/// \brief ftmc::net transport tests against real loopback sockets:
///        round trips, deadlines (connect, read, mid-frame stall), stop
///        predicates and EINTR-hardened teardown.
///
/// Each test binds an ephemeral port (port 0) so parallel ctest
/// invocations never collide. serve/tcp_test.cpp covers the same engine
/// through the serve::TcpServer veneer; this file exercises the generic
/// layer directly — echo handlers, no JSON semantics.
#include "ftmc/net/socket.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "ftmc/net/frame.hpp"

namespace ftmc::net {
namespace {

using namespace std::chrono_literals;

/// Server running an echo handler on its own thread; joined on scope
/// exit.
class EchoServer {
 public:
  explicit EchoServer(FramedServerOptions options = {},
                      FramedServer::StopPredicate stop = {})
      : server_([](std::string_view payload) { return std::string(payload); },
                options, std::move(stop)),
        thread_([this] { server_.serve(); }) {}
  ~EchoServer() {
    server_.stop();
    thread_.join();
  }
  [[nodiscard]] std::uint16_t port() const noexcept {
    return server_.port();
  }

 private:
  FramedServer server_;
  std::thread thread_;
};

TEST(FramedClient, EchoRoundTrip) {
  EchoServer server;
  FramedClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.call("hello fleet"), "hello fleet");
  EXPECT_EQ(client.call(std::string(100000, 'x')),
            std::string(100000, 'x'));
}

TEST(FramedClient, ConnectionRefusedIsRuntimeErrorNotTimeout) {
  // Bind-then-close yields a port that is almost surely unbound now.
  std::uint16_t dead_port = 0;
  {
    EchoServer server;
    dead_port = server.port();
  }
  try {
    FramedClient client("127.0.0.1", dead_port);
    FAIL() << "connect to a dead port succeeded";
  } catch (const TimeoutError&) {
    FAIL() << "refusal must not be classified as a timeout";
  } catch (const std::runtime_error&) {
    SUCCEED();
  }
}

TEST(FramedClient, ReadDeadlineThrowsTimeoutError) {
  // A handler slower than the client's read deadline: the client must
  // give up with TimeoutError instead of wedging forever.
  FramedServer server(
      [](std::string_view payload) {
        std::this_thread::sleep_for(500ms);
        return std::string(payload);
      },
      FramedServerOptions{});
  std::thread accept_thread([&] { server.serve(); });

  FramedClientOptions options;
  options.read_timeout_ms = 50;
  FramedClient client("127.0.0.1", server.port(), options);
  EXPECT_THROW((void)client.call("ping"), TimeoutError);

  server.stop();
  accept_thread.join();
}

TEST(FramedServer, MidFrameStallIsDroppedAndServerStaysUsable) {
  FramedServerOptions options;
  options.mid_frame_timeout_ms = 100;
  options.idle_poll_ms = 20;
  EchoServer server(options);

  FramedClient stalled("127.0.0.1", server.port());
  std::string partial;
  partial += '\x00';
  partial += '\x00';
  partial += '\x00';
  partial += '\x08';
  partial += "ab";  // 2 of 8 promised bytes, then silence
  stalled.send_raw(partial);
  // The server must cut the stalled connection: the next read sees EOF
  // (runtime_error), not an answer and not an indefinite hang.
  FramedClientOptions stalled_options;
  stalled_options.read_timeout_ms = 5000;
  EXPECT_THROW((void)stalled.read_response(), std::runtime_error);

  // ... and a healthy client is still served.
  FramedClient healthy("127.0.0.1", server.port());
  EXPECT_EQ(healthy.call("still alive"), "still alive");
}

TEST(FramedServer, IdleConnectionBetweenFramesIsNotDropped) {
  FramedServerOptions options;
  options.mid_frame_timeout_ms = 100;  // well below the idle gap
  options.idle_poll_ms = 20;
  EchoServer server(options);
  FramedClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.call("one"), "one");
  std::this_thread::sleep_for(300ms);  // idle between frames
  EXPECT_EQ(client.call("two"), "two");
}

TEST(FramedServer, OversizedClaimAnswersOneErrorFrameThenCloses) {
  FramedServerOptions options;
  options.max_frame_bytes = 1u << 10;
  EchoServer server(options);
  FramedClient client("127.0.0.1", server.port());
  std::string header;
  header += '\x00';
  header += '\x10';  // 1 MiB claim against a 1 KiB cap
  header += '\x00';
  header += '\x00';
  client.send_raw(header);
  const std::string response = client.read_response();
  EXPECT_NE(response.find("\"error\""), std::string::npos);
  EXPECT_THROW((void)client.read_response(), std::runtime_error);
}

TEST(FramedServer, StopPredicateDrainsListenerWithoutConnections) {
  // The accept loop polls the predicate even when nobody connects, so a
  // coordinator whose campaign completes drains on its own.
  std::atomic<bool> done{false};
  FramedServerOptions options;
  options.accept_poll_ms = 10;
  FramedServer server(
      [](std::string_view payload) { return std::string(payload); },
      options, [&done] { return done.load(); });
  std::thread accept_thread([&] { server.serve(); });
  std::this_thread::sleep_for(50ms);
  done.store(true);
  accept_thread.join();  // the assertion: returns without stop()
  SUCCEED();
}

TEST(FramedServer, StopUnblocksIdleConnection) {
  FramedServerOptions options;
  options.idle_poll_ms = 20;
  FramedServer server(
      [](std::string_view payload) { return std::string(payload); },
      options);
  std::thread accept_thread([&] { server.serve(); });
  FramedClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.call("warm"), "warm");
  // The connection sits idle mid-stream; stop() must still conclude
  // serve() promptly (ctest's timeout enforces "promptly").
  server.stop();
  accept_thread.join();
  SUCCEED();
}

TEST(FrameCodec, RoundTripThroughDecoder) {
  const std::string framed = encode_frame("payload bytes");
  FrameDecoder decoder(1u << 20);
  decoder.feed(framed);
  const auto payload = decoder.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "payload bytes");
  EXPECT_TRUE(decoder.idle());
}

}  // namespace
}  // namespace ftmc::net
