#include "ftmc/fms/fms.hpp"

#include <gtest/gtest.h>

#include "ftmc/core/ft_scheduler.hpp"
#include "ftmc/core/profiles.hpp"

namespace ftmc::fms {
namespace {

using core::SafetyRequirements;

TEST(FmsTemplate, MatchesTable4) {
  const auto& tmpl = fms_template();
  ASSERT_EQ(tmpl.size(), 11u);
  // Periods of Table 4.
  EXPECT_DOUBLE_EQ(tmpl[0].period, 5000.0);
  EXPECT_DOUBLE_EQ(tmpl[1].period, 200.0);
  EXPECT_DOUBLE_EQ(tmpl[2].period, 1000.0);
  EXPECT_DOUBLE_EQ(tmpl[3].period, 1600.0);
  EXPECT_DOUBLE_EQ(tmpl[4].period, 100.0);
  for (std::size_t i = 5; i < 11; ++i) {
    EXPECT_DOUBLE_EQ(tmpl[i].period, 1000.0);
  }
  // Seven level B tasks with C <= 20, four level C tasks with C <= 200.
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(tmpl[i].dal, Dal::B);
    EXPECT_DOUBLE_EQ(tmpl[i].wcet_max, 20.0);
  }
  for (std::size_t i = 7; i < 11; ++i) {
    EXPECT_EQ(tmpl[i].dal, Dal::C);
    EXPECT_DOUBLE_EQ(tmpl[i].wcet_max, 200.0);
  }
}

TEST(FmsRandomInstance, ConformsToTemplate) {
  std::mt19937_64 rng(42);
  for (int rep = 0; rep < 20; ++rep) {
    const core::FtTaskSet ts = random_fms_instance(rng);
    ASSERT_EQ(ts.size(), 11u);
    const auto& tmpl = fms_template();
    for (std::size_t i = 0; i < 11; ++i) {
      EXPECT_DOUBLE_EQ(ts[i].period, tmpl[i].period);
      EXPECT_GT(ts[i].wcet, 0.0);
      EXPECT_LE(ts[i].wcet, tmpl[i].wcet_max);
      EXPECT_EQ(ts[i].dal, tmpl[i].dal);
      EXPECT_DOUBLE_EQ(ts[i].failure_prob, kFmsFailureProb);
      EXPECT_TRUE(ts[i].implicit_deadline());
    }
    EXPECT_EQ(ts.mapping().hi, Dal::B);
    EXPECT_EQ(ts.mapping().lo, Dal::C);
  }
}

TEST(FmsRandomInstance, Deterministic) {
  std::mt19937_64 a(7), b(7);
  const auto ts_a = random_fms_instance(a);
  const auto ts_b = random_fms_instance(b);
  for (std::size_t i = 0; i < ts_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(ts_a[i].wcet, ts_b[i].wcet);
  }
}

TEST(FmsCanonical, BaseUtilizations) {
  const core::FtTaskSet ts = canonical_fms_instance();
  EXPECT_NEAR(ts.utilization(CritLevel::HI), 0.091, 1e-9);
  EXPECT_NEAR(ts.utilization(CritLevel::LO), 0.365, 1e-9);
}

TEST(FmsCanonical, MinimalProfilesMatchPaper) {
  // Sec. 5.1: "the re-execution profiles are set as the minimal profiles
  // (n_HI = 3, n_LO = 2)".
  const core::FtTaskSet ts = canonical_fms_instance();
  const auto reqs = SafetyRequirements::do178b();
  const auto n_hi = core::min_reexec_profile(ts, CritLevel::HI, reqs);
  const auto n_lo = core::min_reexec_profile(ts, CritLevel::LO, reqs);
  ASSERT_TRUE(n_hi.has_value());
  ASSERT_TRUE(n_lo.has_value());
  EXPECT_EQ(*n_hi, 3);
  EXPECT_EQ(*n_lo, 2);
}

TEST(FmsCanonical, NotSchedulableWithoutAdaptation) {
  // "The FMS application is not schedulable with the task re-execution
  // profiles" (without killing/degradation): 3*0.091 + 2*0.365 = 1.003.
  const core::FtTaskSet ts = canonical_fms_instance();
  const double worst_case =
      3.0 * ts.utilization(CritLevel::HI) + 2.0 * ts.utilization(CritLevel::LO);
  EXPECT_GT(worst_case, 1.0);
}

TEST(FmsCanonical, UmcCrossesOneBetween2And3ForKilling) {
  // Fig. 1: schedulable region is n' <= 2.
  const core::FtTaskSet ts = canonical_fms_instance();
  core::AdaptationModel model;
  model.kind = mcs::AdaptationKind::kKilling;
  model.os_hours = kFmsOperationHours;
  const auto pts = core::sweep_adaptation(ts, 3, 2, model,
                                          SafetyRequirements::do178b(), 4);
  EXPECT_TRUE(pts[0].schedulable);
  EXPECT_TRUE(pts[1].schedulable);
  EXPECT_TRUE(pts[2].schedulable);
  EXPECT_FALSE(pts[3].schedulable);
  EXPECT_FALSE(pts[4].schedulable);
}

TEST(FmsCanonical, UmcCrossesOneBetween2And3ForDegradation) {
  // Fig. 2: same schedulable region under degradation with d_f = 6.
  const core::FtTaskSet ts = canonical_fms_instance();
  core::AdaptationModel model;
  model.kind = mcs::AdaptationKind::kDegradation;
  model.degradation_factor = kFmsDegradationFactor;
  model.os_hours = kFmsOperationHours;
  const auto pts = core::sweep_adaptation(ts, 3, 2, model,
                                          SafetyRequirements::do178b(), 4);
  EXPECT_TRUE(pts[2].schedulable);
  EXPECT_FALSE(pts[3].schedulable);
}

TEST(FmsCanonical, KillingOrdersOfMagnitudeMatchPaper) {
  // Sec. 5.1: "when n'_HI = 2, if task killing is adopted, then the order
  // of magnitude of pfh(LO) is 1e-1, compared to ~1e-10/1e-11 when service
  // degradation is adopted".
  const core::FtTaskSet ts = canonical_fms_instance();
  core::AdaptationModel kill;
  kill.kind = mcs::AdaptationKind::kKilling;
  kill.os_hours = kFmsOperationHours;
  const double pfh_kill = core::pfh_lo_under_adaptation(ts, 3, 2, 2, kill);
  EXPECT_GT(pfh_kill, 1e-2);
  EXPECT_LT(pfh_kill, 1.0);

  core::AdaptationModel degrade;
  degrade.kind = mcs::AdaptationKind::kDegradation;
  degrade.degradation_factor = kFmsDegradationFactor;
  degrade.os_hours = kFmsOperationHours;
  const double pfh_deg = core::pfh_lo_under_adaptation(ts, 3, 2, 2, degrade);
  EXPECT_LT(pfh_deg, 1e-9);
  EXPECT_GT(pfh_deg, 1e-12);
}

TEST(FmsCanonical, KillingUnsafeDegradationSafeInSchedulableRegion) {
  // The headline conclusion: within the schedulable region (n' <= 2),
  // killing violates the level C requirement while degradation meets it.
  const core::FtTaskSet ts = canonical_fms_instance();
  const auto reqs = SafetyRequirements::do178b();
  core::AdaptationModel kill;
  kill.kind = mcs::AdaptationKind::kKilling;
  kill.os_hours = kFmsOperationHours;
  core::AdaptationModel degrade;
  degrade.kind = mcs::AdaptationKind::kDegradation;
  degrade.degradation_factor = kFmsDegradationFactor;
  degrade.os_hours = kFmsOperationHours;

  const auto kill_pts =
      core::sweep_adaptation(ts, 3, 2, kill, reqs, 2);
  const auto deg_pts =
      core::sweep_adaptation(ts, 3, 2, degrade, reqs, 2);
  for (const auto& p : kill_pts) {
    EXPECT_FALSE(p.safe) << "killing n' = " << p.n_adapt;
  }
  for (const auto& p : deg_pts) {
    EXPECT_TRUE(p.safe) << "degradation n' = " << p.n_adapt;
  }
}

TEST(FmsCanonical, FtScheduleEndToEnd) {
  // FT-S with killing must FAIL (safety), with degradation must SUCCEED.
  const core::FtTaskSet ts = canonical_fms_instance();
  core::FtsConfig kill;
  kill.adaptation.kind = mcs::AdaptationKind::kKilling;
  kill.adaptation.os_hours = kFmsOperationHours;
  const auto r_kill = core::ft_schedule(ts, kill);
  EXPECT_FALSE(r_kill.success);

  core::FtsConfig degrade;
  degrade.adaptation.kind = mcs::AdaptationKind::kDegradation;
  degrade.adaptation.degradation_factor = kFmsDegradationFactor;
  degrade.adaptation.os_hours = kFmsOperationHours;
  const auto r_deg = core::ft_schedule(ts, degrade);
  ASSERT_TRUE(r_deg.success) << to_string(r_deg.failure);
  EXPECT_EQ(r_deg.n_hi, 3);
  EXPECT_EQ(r_deg.n_lo, 2);
  EXPECT_EQ(r_deg.n_adapt, 2);
}

}  // namespace
}  // namespace ftmc::fms
