#include "ftmc/sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <random>

#include "ftmc/common/contracts.hpp"
#include "ftmc/core/analysis.hpp"
#include "ftmc/exec/seed.hpp"

namespace ftmc::sim {
namespace {

SimTask task(const std::string& name, Tick period, Tick wcet, CritLevel crit,
             int max_attempts, int adapt_threshold, double f) {
  SimTask t;
  t.name = name;
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.crit = crit;
  t.max_attempts = max_attempts;
  t.adapt_threshold = adapt_threshold;
  t.failure_prob = f;
  t.virtual_deadline = period;
  return t;
}

TEST(Wilson, DegenerateCases) {
  BinomialEstimate none;
  EXPECT_DOUBLE_EQ(none.rate(), 0.0);
  EXPECT_DOUBLE_EQ(none.wilson_lower(), 0.0);
  EXPECT_DOUBLE_EQ(none.wilson_upper(), 1.0);
}

TEST(Wilson, IntervalContainsRateAndIsOrdered) {
  BinomialEstimate e{30, 100};
  EXPECT_DOUBLE_EQ(e.rate(), 0.3);
  EXPECT_LT(e.wilson_lower(), 0.3);
  EXPECT_GT(e.wilson_upper(), 0.3);
  EXPECT_GE(e.wilson_lower(), 0.0);
  EXPECT_LE(e.wilson_upper(), 1.0);
}

TEST(Wilson, KnownValue) {
  // p = 0.5, n = 100, z = 1.96: interval ~ [0.404, 0.596].
  BinomialEstimate e{50, 100};
  EXPECT_NEAR(e.wilson_lower(), 0.404, 0.002);
  EXPECT_NEAR(e.wilson_upper(), 0.596, 0.002);
}

TEST(Wilson, ShrinksWithSampleSize) {
  BinomialEstimate small{5, 10};
  BinomialEstimate large{500, 1000};
  EXPECT_LT(large.wilson_upper() - large.wilson_lower(),
            small.wilson_upper() - small.wilson_lower());
}

TEST(Wilson, ZeroSuccessesStillHavePositiveUpperBound) {
  BinomialEstimate e{0, 100};
  EXPECT_DOUBLE_EQ(e.rate(), 0.0);
  EXPECT_GT(e.wilson_upper(), 0.0);  // "rule of three" flavor
  EXPECT_LT(e.wilson_upper(), 0.06);
}

TEST(MonteCarlo, TriggerRateBracketsTrueProbability) {
  // Single HI task, n' = 1, f = 0.1, mission = 10 rounds: true trigger
  // probability = 1 - (1-0.1)^10 ~ 0.651. The 95% interval over 300
  // missions must contain it.
  std::vector<SimTask> tasks = {
      task("h", 100'000, 1'000, CritLevel::HI, 3, 1, 0.1)};
  SimConfig cfg;
  cfg.policy = PolicyKind::kEdfVd;
  cfg.adaptation = mcs::AdaptationKind::kKilling;
  MonteCarloOptions opt;
  opt.missions = 300;
  // 10 first attempts complete strictly inside [0, horizon): the last
  // job releases at 900000 and its attempt ends at 901000, so any
  // horizon above that sees all 10 Bernoulli trials.
  opt.mission_length = 950'000;
  opt.seed = 7;
  const MonteCarloResult r = monte_carlo_campaign(tasks, cfg, opt);
  const double truth = 1.0 - std::pow(0.9, 10.0);
  EXPECT_GE(truth, r.trigger.wilson_lower());
  EXPECT_LE(truth, r.trigger.wilson_upper());
}

TEST(MonteCarlo, JobFailureRateMatchesFPowerN) {
  std::vector<SimTask> tasks = {
      task("l", 10'000, 100, CritLevel::LO, 2, 2, 0.2)};
  SimConfig cfg;
  cfg.policy = PolicyKind::kEdf;
  MonteCarloOptions opt;
  opt.missions = 50;
  opt.mission_length = 10'000'000;  // 1000 jobs per mission
  const MonteCarloResult r = monte_carlo_campaign(tasks, cfg, opt);
  // True per-job failure prob = 0.2^2 = 0.04; 50k jobs -> tight interval.
  EXPECT_GE(0.04, r.job_failure_lo.wilson_lower());
  EXPECT_LE(0.04, r.job_failure_lo.wilson_upper());
  EXPECT_EQ(r.job_failure_hi.trials, 0u);
}

TEST(MonteCarlo, EmpiricalPfhBelowAnalyticalBound) {
  core::FtTaskSet ts(
      {core::FtTask{"h", 100.0, 100.0, 5.0, Dal::B, 1e-2},
       core::FtTask{"l", 200.0, 200.0, 8.0, Dal::C, 1e-2}},
      DualCriticalityMapping{Dal::B, Dal::C});
  const auto n = core::uniform_profile(ts, 2, 2);
  const double bound_hi = core::pfh_plain(ts, n, CritLevel::HI);
  const double bound_lo = core::pfh_plain(ts, n, CritLevel::LO);

  SimConfig cfg;
  cfg.policy = PolicyKind::kEdf;
  MonteCarloOptions opt;
  opt.missions = 20;
  opt.mission_length = kTicksPerHour;
  const MonteCarloResult r = monte_carlo_campaign(
      build_sim_tasks(ts, 2, 2, 2, 1.0), cfg, opt);
  EXPECT_GT(r.simulated_hours, 19.9);
  EXPECT_LE(r.pfh_hi, bound_hi * 1.3 + 0.2);
  EXPECT_LE(r.pfh_lo, bound_lo * 1.3 + 0.2);
  EXPECT_GT(r.pfh_hi + r.pfh_lo, 0.0);  // faults happen at f = 1%
}

TEST(MonteCarlo, DeterministicGivenSeed) {
  std::vector<SimTask> tasks = {
      task("h", 100'000, 1'000, CritLevel::HI, 2, 1, 0.2)};
  SimConfig cfg;
  cfg.policy = PolicyKind::kEdfVd;
  MonteCarloOptions opt;
  opt.missions = 40;
  opt.mission_length = 1'000'000;
  const auto a = monte_carlo_campaign(tasks, cfg, opt);
  const auto b = monte_carlo_campaign(tasks, cfg, opt);
  EXPECT_EQ(a.trigger.successes, b.trigger.successes);
  EXPECT_DOUBLE_EQ(a.pfh_hi, b.pfh_hi);
}

TEST(MonteCarlo, AdjacentBaseSeedsUseIndependentMissionStreams) {
  // Regression: mission seeds used to be `seed + m`, so campaign(seed=1)
  // mission 1 and campaign(seed=2) mission 0 shared one RNG stream (and
  // adjacent campaigns shared all but one). With SplitMix64 derivation
  // the two streams must differ.
  const std::uint64_t s11 = exec::derive_seed(1, 1);
  const std::uint64_t s20 = exec::derive_seed(2, 0);
  ASSERT_NE(s11, s20);
  std::mt19937_64 stream_a(s11);
  std::mt19937_64 stream_b(s20);
  bool differs = false;
  for (int i = 0; i < 8; ++i) differs |= stream_a() != stream_b();
  EXPECT_TRUE(differs);
}

TEST(MonteCarlo, ParallelShardingMatchesSerial) {
  std::vector<SimTask> tasks = {
      task("h", 100'000, 1'000, CritLevel::HI, 2, 1, 0.2),
      task("l", 130'000, 1'500, CritLevel::LO, 2, 2, 0.1)};
  SimConfig cfg;
  cfg.policy = PolicyKind::kEdfVd;
  MonteCarloOptions opt;
  opt.missions = 33;
  opt.mission_length = 1'000'000;
  opt.threads = 1;
  const auto serial = monte_carlo_campaign(tasks, cfg, opt);
  opt.threads = 4;
  const auto parallel = monte_carlo_campaign(tasks, cfg, opt);
  EXPECT_EQ(serial.trigger.successes, parallel.trigger.successes);
  EXPECT_EQ(serial.job_failure_lo.trials, parallel.job_failure_lo.trials);
  EXPECT_EQ(serial.simulated_hours, parallel.simulated_hours);
  EXPECT_EQ(serial.pfh_hi, parallel.pfh_hi);
  EXPECT_EQ(serial.pfh_lo, parallel.pfh_lo);
}

TEST(MonteCarlo, RejectsBadOptions) {
  std::vector<SimTask> tasks = {
      task("h", 100'000, 1'000, CritLevel::HI, 2, 1, 0.2)};
  SimConfig cfg;
  MonteCarloOptions opt;
  opt.missions = 0;
  EXPECT_THROW((void)monte_carlo_campaign(tasks, cfg, opt),
               ContractViolation);
  opt = MonteCarloOptions{};
  opt.mission_length = 0;
  EXPECT_THROW((void)monte_carlo_campaign(tasks, cfg, opt),
               ContractViolation);
}

}  // namespace
}  // namespace ftmc::sim
