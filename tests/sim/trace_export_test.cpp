/// Tests of the trace exporters: RFC-4180 CSV quoting (regression for
/// task names containing commas/quotes/newlines) and the Chrome
/// trace-event conversion (balanced B/E per lane, valid document).
#include "ftmc/sim/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ftmc/sim/engine.hpp"

namespace ftmc::sim {
namespace {

TEST(CsvEscape, PassesPlainFieldsThrough) {
  EXPECT_EQ(csv_escape("tau1"), "tau1");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("with space"), "with space");
}

TEST(CsvEscape, QuotesFieldsWithSeparatorsAndQuotes) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csv_escape("cr\rreturn"), "\"cr\rreturn\"");
}

TEST(WriteTraceCsv, QuotesTaskNames) {
  // Regression: a name with a comma used to split the CSV row.
  const std::vector<TraceEvent> trace = {
      {0, TraceKind::kRelease, 0, 1, 0},
      {5, TraceKind::kStart, 0, 1, 1},
      {10, TraceKind::kComplete, 0, 1, 0},
  };
  std::ostringstream os;
  write_trace_csv(os, trace, {"nav, primary"});
  const std::string csv = os.str();

  EXPECT_NE(csv.find("\"nav, primary\""), std::string::npos);
  // Every data row still has exactly 5 commas outside quotes (6 fields).
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // header
  while (std::getline(lines, line)) {
    int commas = 0;
    bool quoted = false;
    for (char ch : line) {
      if (ch == '"') quoted = !quoted;
      if (ch == ',' && !quoted) ++commas;
    }
    EXPECT_EQ(commas, 5) << "row: " << line;
  }
}

TEST(WriteTraceCsv, OmittedNamesStillProduceRows) {
  const std::vector<TraceEvent> trace = {
      {0, TraceKind::kRelease, 0, 1, 0}};
  std::ostringstream os;
  write_trace_csv(os, trace, {});
  EXPECT_NE(os.str().find("release"), std::string::npos);
}

/// Scans rendered Chrome events, asserting per-lane B/E balance and
/// filling `phases` with per-phase counts.
void check_balance(const std::vector<std::string>& events,
                   std::map<char, int>& phases) {
  std::map<int, int> depth;  // tid -> open spans
  for (const std::string& e : events) {
    const auto ph_pos = e.find("\"ph\":\"");
    ASSERT_NE(ph_pos, std::string::npos) << e;
    const char ph = e[ph_pos + 6];
    ++phases[ph];
    if (ph != 'B' && ph != 'E') continue;
    const auto tid_pos = e.find("\"tid\":");
    ASSERT_NE(tid_pos, std::string::npos);
    const int tid = std::stoi(e.substr(tid_pos + 6));
    int& d = depth[tid];
    d += ph == 'B' ? 1 : -1;
    ASSERT_GE(d, 0) << "E without B on tid " << tid << ": " << e;
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced lane tid " << tid;
  }
}

TEST(ChromeTraceExport, SyntheticTraceBalancesAndClosesOpenSpans) {
  const std::vector<TraceEvent> trace = {
      {0, TraceKind::kRelease, 0, 1, 0},
      {0, TraceKind::kStart, 0, 1, 1},
      {3, TraceKind::kPreempt, 0, 1, 0},
      {3, TraceKind::kStart, 1, 1, 1},
      {7, TraceKind::kComplete, 1, 1, 0},
      {8, TraceKind::kModeSwitch, 0, 0, 0},
      {9, TraceKind::kStart, 0, 1, 2},
      // No closing event for task 0: the exporter must close it.
  };
  std::vector<std::string> events;
  append_trace_chrome_events(events, trace, {"tau1", "tau2"}, 1);

  std::map<char, int> phases;
  check_balance(events, phases);
  EXPECT_EQ(phases.at('B'), 3);
  EXPECT_EQ(phases.at('E'), 3);
  EXPECT_GT(phases.at('i'), 0);  // releases, completion, mode switch
  EXPECT_GT(phases.at('M'), 0);  // lane names
}

TEST(ChromeTraceExport, RealSimulationProducesAValidDocument) {
  // One simulated second of a two-task system with faults enabled.
  std::vector<SimTask> tasks(2);
  tasks[0].name = "hi";
  tasks[0].period = 10'000;
  tasks[0].deadline = 10'000;
  tasks[0].wcet = 2'000;
  tasks[0].crit = CritLevel::HI;
  tasks[0].max_attempts = 3;
  tasks[0].adapt_threshold = 2;
  tasks[0].failure_prob = 0.05;
  tasks[0].virtual_deadline = 5'000;
  tasks[1].name = "lo";
  tasks[1].period = 20'000;
  tasks[1].deadline = 20'000;
  tasks[1].wcet = 5'000;
  tasks[1].crit = CritLevel::LO;
  tasks[1].max_attempts = 2;
  tasks[1].adapt_threshold = 2;
  tasks[1].failure_prob = 0.05;
  tasks[1].virtual_deadline = 20'000;

  SimConfig cfg;
  cfg.policy = PolicyKind::kEdfVd;
  cfg.horizon = kTicksPerSecond;
  cfg.seed = 3;
  cfg.trace_capacity = 50'000;
  Simulator simulator(tasks, cfg);
  simulator.run();
  ASSERT_FALSE(simulator.trace().empty());

  std::vector<std::string> events;
  append_trace_chrome_events(events, simulator.trace(), {"hi", "lo"}, 1);
  std::map<char, int> phases;
  check_balance(events, phases);
  EXPECT_GT(phases['B'], 0);

  std::ostringstream os;
  write_trace_chrome_json(os, simulator.trace(), {"hi", "lo"});
  const std::string doc = os.str();
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u);
}

}  // namespace
}  // namespace ftmc::sim
