/// Tests of the campaign progress callbacks and of the determinism
/// guarantee under instrumentation: attaching a progress callback, a
/// span recorder and a metrics registry must not change any result bit.
#include <gtest/gtest.h>

#include <vector>

#include "ftmc/core/design_space.hpp"
#include "ftmc/fms/fms.hpp"
#include "ftmc/obs/progress.hpp"
#include "ftmc/obs/registry.hpp"
#include "ftmc/obs/span.hpp"
#include "ftmc/sim/monte_carlo.hpp"

namespace ftmc {
namespace {

std::vector<sim::SimTask> small_system() {
  return sim::build_sim_tasks(fms::canonical_fms_instance(), 3, 2, 2, 0.5);
}

sim::SimConfig base_config() {
  sim::SimConfig cfg;
  cfg.policy = sim::PolicyKind::kEdfVd;
  cfg.adaptation = mcs::AdaptationKind::kKilling;
  return cfg;
}

void expect_identical(const sim::MonteCarloResult& a,
                      const sim::MonteCarloResult& b) {
  EXPECT_EQ(a.trigger.successes, b.trigger.successes);
  EXPECT_EQ(a.trigger.trials, b.trigger.trials);
  EXPECT_EQ(a.job_failure_hi.successes, b.job_failure_hi.successes);
  EXPECT_EQ(a.job_failure_hi.trials, b.job_failure_hi.trials);
  EXPECT_EQ(a.job_failure_lo.successes, b.job_failure_lo.successes);
  EXPECT_EQ(a.job_failure_lo.trials, b.job_failure_lo.trials);
  EXPECT_EQ(a.pfh_hi, b.pfh_hi);  // bit-identical, not just close
  EXPECT_EQ(a.pfh_lo, b.pfh_lo);
  EXPECT_EQ(a.simulated_hours, b.simulated_hours);
}

TEST(MonteCarloProgress, CallbackReportsMonotonicallyUpToTotal) {
  sim::MonteCarloOptions opt;
  opt.missions = 32;
  opt.mission_length = sim::kTicksPerSecond / 10;
  opt.seed = 11;
  opt.threads = 2;
  opt.progress_interval = 0.0;  // report every completion

  std::vector<obs::Progress> updates;
  opt.progress = [&updates](const obs::Progress& p) {
    updates.push_back(p);
  };
  (void)sim::monte_carlo_campaign(small_system(), base_config(), opt);

  ASSERT_FALSE(updates.empty());
  std::size_t last_done = 0;
  for (const obs::Progress& p : updates) {
    EXPECT_EQ(p.total, 32u);
    EXPECT_GE(p.done, last_done);
    EXPECT_LE(p.done, p.total);
    EXPECT_GE(p.wall_seconds, 0.0);
    last_done = p.done;
  }
  // The final update reports completion.
  EXPECT_EQ(updates.back().done, 32u);
  EXPECT_DOUBLE_EQ(updates.back().fraction(), 1.0);
}

TEST(MonteCarloProgress, SerialCampaignReportsToo) {
  sim::MonteCarloOptions opt;
  opt.missions = 8;
  opt.mission_length = sim::kTicksPerSecond / 10;
  opt.threads = 1;
  opt.progress_interval = 0.0;

  std::size_t calls = 0;
  std::size_t final_done = 0;
  opt.progress = [&](const obs::Progress& p) {
    ++calls;
    final_done = p.done;
  };
  (void)sim::monte_carlo_campaign(small_system(), base_config(), opt);
  EXPECT_GT(calls, 0u);
  EXPECT_EQ(final_done, 8u);
}

TEST(MonteCarloDeterminism, InstrumentationDoesNotChangeResults) {
  const auto tasks = small_system();

  sim::MonteCarloOptions plain;
  plain.missions = 24;
  plain.mission_length = sim::kTicksPerSecond / 4;
  plain.seed = 20140601;
  plain.threads = 1;
  const auto baseline =
      sim::monte_carlo_campaign(tasks, base_config(), plain);

  // Threaded + spans + progress + metrics registry: still bit-identical.
  obs::SpanRecorder recorder;
  obs::Registry registry;
  sim::MonteCarloOptions instrumented = plain;
  instrumented.threads = 4;
  instrumented.spans = &recorder;
  instrumented.progress_interval = 0.0;
  instrumented.progress = [](const obs::Progress&) {};
  sim::SimConfig cfg = base_config();
  cfg.registry = &registry;
  const auto result = sim::monte_carlo_campaign(tasks, cfg, instrumented);

  expect_identical(baseline, result);
  // One "mission" span per mission plus one region span per chunk.
  EXPECT_GE(recorder.total_events() + recorder.total_dropped(), 24u);
  // And the registry saw the simulated activity.
  const auto snap = registry.snapshot();
  ASSERT_FALSE(snap.counters.empty());
  std::uint64_t releases = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "sim.releases") releases = value;
  }
  EXPECT_GT(releases, 0u);
}

TEST(DesignSpaceProgress, CallbackCoversTheWholeGrid) {
  const auto fms = fms::canonical_fms_instance();
  core::DesignSpaceOptions opt;
  opt.os_hours = 1.0;
  opt.degradation_factors = {2.0, 6.0};
  opt.segment_counts = {1};
  opt.threads = 2;
  opt.progress_interval = 0.0;

  std::vector<obs::Progress> updates;
  opt.progress = [&updates](const obs::Progress& p) {
    updates.push_back(p);
  };
  const auto points = core::explore_design_space(fms, opt);

  ASSERT_FALSE(updates.empty());
  EXPECT_EQ(updates.back().done, points.size());
  EXPECT_EQ(updates.back().total, points.size());
}

TEST(DesignSpaceDeterminism, SpansAndProgressDoNotChangeTheFront) {
  const auto fms = fms::canonical_fms_instance();
  core::DesignSpaceOptions plain;
  plain.os_hours = 1.0;
  const auto baseline = core::explore_design_space(fms, plain);

  obs::SpanRecorder recorder;
  core::DesignSpaceOptions instrumented;
  instrumented.os_hours = 1.0;
  instrumented.threads = 4;
  instrumented.spans = &recorder;
  instrumented.progress = [](const obs::Progress&) {};
  instrumented.progress_interval = 0.0;
  const auto result = core::explore_design_space(fms, instrumented);

  ASSERT_EQ(baseline.size(), result.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].kind, result[i].kind);
    EXPECT_EQ(baseline[i].certifiable, result[i].certifiable);
    EXPECT_EQ(baseline[i].pfh_lo, result[i].pfh_lo);
    EXPECT_EQ(baseline[i].u_mc, result[i].u_mc);
  }
  EXPECT_EQ(core::pareto_front(baseline), core::pareto_front(result));
  EXPECT_GE(recorder.total_events(), baseline.size());
}

}  // namespace
}  // namespace ftmc
