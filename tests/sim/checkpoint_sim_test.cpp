/// Tests of checkpointed execution in the simulator, including empirical
/// validation of the core::checkpointing analysis (the negative-binomial
/// job failure probability and the worst-case budget).
#include <gtest/gtest.h>

#include "ftmc/core/checkpointing.hpp"
#include "ftmc/sim/monte_carlo.hpp"

namespace ftmc::sim {
namespace {

SimTask ckpt_task(Tick period, Tick wcet, int segments, int retry_budget,
                  double f, double overhead = 0.0) {
  SimTask t;
  t.name = "c";
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.crit = CritLevel::LO;
  t.max_attempts = retry_budget + 1;  // total faults allowed = R
  t.adapt_threshold = retry_budget + 1;
  t.failure_prob = f;
  t.virtual_deadline = period;
  t.segments = segments;
  t.checkpoint_overhead = overhead;
  return t;
}

SimConfig edf(Tick horizon, std::uint64_t seed = 1) {
  SimConfig c;
  c.policy = PolicyKind::kEdf;
  c.horizon = horizon;
  c.seed = seed;
  return c;
}

TEST(CheckpointSim, FaultFreeJobTakesFullWcetInSegments) {
  // 4 segments of 250 each, no overhead: completion at 1000 as if whole.
  Simulator sim({ckpt_task(10'000, 1'000, 4, 2, 0.0)}, edf(10'000));
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[0].completed, 1u);
  EXPECT_EQ(s.per_task[0].attempts, 4u);  // four segment executions
  EXPECT_EQ(s.per_task[0].max_response, 1'000);
  EXPECT_EQ(s.busy_time, 1'000);
}

TEST(CheckpointSim, OverheadExtendsResponse) {
  // 2 segments, 10% overhead: each segment 500 + 100 -> response 1200.
  Simulator sim({ckpt_task(10'000, 1'000, 2, 1, 0.0, 0.1)}, edf(10'000));
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[0].max_response, 1'200);
}

TEST(CheckpointSim, RetryRerunsOnlyOneSegment) {
  // Deterministic-ish check via busy time accounting: with k segments,
  // every fault adds exactly one segment of work.
  Simulator sim({ckpt_task(100'000, 1'000, 4, 8, 0.3)},
                edf(100'000'000, 9));
  const SimStats s = sim.run();
  const auto& t = s.per_task[0];
  // busy = attempts * segment length (250).
  EXPECT_EQ(s.busy_time, static_cast<Tick>(t.attempts) * 250);
  EXPECT_GT(t.faults, 0u);
}

TEST(CheckpointSim, SegmentFaultRateMatchesDerivedProbability) {
  // f = 0.4 over 4 segments -> q = 1 - 0.6^(1/4) ~ 0.1199. Check the
  // observed per-segment fault rate against it (4-sigma band).
  const double f = 0.4;
  const int k = 4;
  Simulator sim({ckpt_task(10'000, 1'000, k, 50, f)},
                edf(100'000'000, 3));
  const SimStats s = sim.run();
  const double q_true = core::segment_failure_prob(f, k);
  const double n = static_cast<double>(s.per_task[0].attempts);
  const double observed = static_cast<double>(s.per_task[0].faults) / n;
  const double sigma = std::sqrt(q_true * (1 - q_true) / n);
  EXPECT_NEAR(observed, q_true, 4.0 * sigma);
}

TEST(CheckpointSim, JobFailureRateMatchesNegativeBinomialBound) {
  // f = 0.5, k = 2, R = 2: analysis gives the exact failure probability;
  // the empirical rate over ~100k jobs must bracket it.
  const double f = 0.5;
  const core::CheckpointScheme scheme{2, 2, 0.0};
  const double p_true = core::checkpointed_job_failure_prob(f, scheme);

  MonteCarloOptions opt;
  opt.missions = 20;
  opt.mission_length = 50'000'000;  // 5000 jobs per mission
  SimConfig cfg;
  cfg.policy = PolicyKind::kEdf;
  const MonteCarloResult r = monte_carlo_campaign(
      {ckpt_task(10'000, 100, 2, 2, f)}, cfg, opt);
  EXPECT_GE(p_true, r.job_failure_lo.wilson_lower());
  EXPECT_LE(p_true, r.job_failure_lo.wilson_upper());
  EXPECT_GT(r.job_failure_lo.successes, 100u);  // the event is not rare
}

TEST(CheckpointSim, MoreSegmentsRecoverMoreJobsAtEqualBudget) {
  // Same total fault budget R = 2, same f: splitting into segments can
  // only help (a fault costs 1/k of the work instead of all of it) —
  // here it shows as fewer deadline overruns under tight deadlines and
  // at least as many completions.
  const double f = 0.3;
  const auto run = [&](int k) {
    Simulator sim({ckpt_task(2'000, 1'000, k, 2, f)},
                  edf(100'000'000, 11));
    return sim.run().per_task[0];
  };
  const TaskStats whole = run(1);
  const TaskStats split = run(4);
  EXPECT_GE(split.completed, whole.completed);
  EXPECT_LE(split.deadline_misses, whole.deadline_misses);
}

TEST(CheckpointSim, WorstCaseBudgetNeverExceeded) {
  // No job may consume more than the checkpointed WCET of the analysis.
  const core::FtTask analysis_task{"c", 10.0, 10.0, 1.0, Dal::C, 0.3};
  const core::CheckpointScheme scheme{4, 3, 0.05};
  const Tick budget =
      millis_to_ticks(core::checkpointed_wcet(analysis_task, scheme));

  SimConfig cfg = edf(10'000'000, 21);
  Simulator sim({ckpt_task(10'000, 1'000, 4, 3, 0.3, 0.05)}, cfg);
  const SimStats s = sim.run();
  // Single task, no preemption: max response = max per-job demand.
  EXPECT_LE(s.per_task[0].max_response, budget);
  EXPECT_GT(s.per_task[0].faults, 0u);
}

TEST(CheckpointSim, RejectsMalformedSegments) {
  SimTask bad = ckpt_task(10'000, 1'000, 0, 1, 0.1);
  EXPECT_THROW(Simulator({bad}, edf(1'000)), ContractViolation);
  bad = ckpt_task(10'000, 1'000, 2, 1, 0.1);
  bad.checkpoint_overhead = 1.0;
  EXPECT_THROW(Simulator({bad}, edf(1'000)), ContractViolation);
}

}  // namespace
}  // namespace ftmc::sim
