#include <gtest/gtest.h>

#include <cmath>

#include "ftmc/sim/engine.hpp"

namespace ftmc::sim {
namespace {

SimTask task(Tick period, Tick wcet, int max_attempts, double f,
             CritLevel crit = CritLevel::LO, int adapt_threshold = -1) {
  SimTask t;
  t.name = "t";
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.crit = crit;
  t.max_attempts = max_attempts;
  t.adapt_threshold = adapt_threshold < 0 ? max_attempts : adapt_threshold;
  t.failure_prob = f;
  t.virtual_deadline = period;
  return t;
}

SimConfig config(Tick horizon, std::uint64_t seed = 1) {
  SimConfig c;
  c.policy = PolicyKind::kEdf;
  c.horizon = horizon;
  c.seed = seed;
  return c;
}

TEST(FaultInjection, FaultRateMatchesFailureProbability) {
  // 100k attempts at f = 0.2: fault count within 4 sigma of the mean.
  const double f = 0.2;
  const SimStats s =
      Simulator({task(1000, 10, 1, f)}, config(100'000'000)).run();
  const double n = static_cast<double>(s.per_task[0].attempts);
  const double expected = n * f;
  const double sigma = std::sqrt(n * f * (1 - f));
  EXPECT_NEAR(static_cast<double>(s.per_task[0].faults), expected,
              4.0 * sigma);
}

TEST(FaultInjection, ReexecutionRecoversMostJobs) {
  // f = 0.3, up to 4 attempts: job failure prob = 0.3^4 = 0.81%.
  const SimStats s =
      Simulator({task(1000, 10, 4, 0.3)}, config(100'000'000)).run();
  const double released = static_cast<double>(s.per_task[0].released);
  const double failures = static_cast<double>(s.per_task[0].job_failures);
  const double rate = failures / released;
  EXPECT_NEAR(rate, 0.0081, 0.002);
  EXPECT_EQ(s.per_task[0].completed + s.per_task[0].job_failures,
            s.per_task[0].released);
}

TEST(FaultInjection, SingleAttemptJobFailureRateIsF) {
  const SimStats s =
      Simulator({task(1000, 10, 1, 0.25)}, config(100'000'000)).run();
  const double rate = static_cast<double>(s.per_task[0].job_failures) /
                      static_cast<double>(s.per_task[0].released);
  EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(FaultInjection, AttemptsPerJobMatchGeometricExpectation) {
  // E[attempts per job] with cap n: sum_{k=0}^{n-1} f^k.
  const double f = 0.4;
  const int n = 3;
  const SimStats s =
      Simulator({task(1000, 10, n, f)}, config(100'000'000)).run();
  const double expected = 1.0 + f + f * f;
  const double mean = static_cast<double>(s.per_task[0].attempts) /
                      static_cast<double>(s.per_task[0].released);
  EXPECT_NEAR(mean, expected, 0.02);
}

TEST(FaultInjection, ZeroFailureProbabilityNeverFaults) {
  const SimStats s =
      Simulator({task(1000, 10, 3, 0.0)}, config(10'000'000)).run();
  EXPECT_EQ(s.per_task[0].faults, 0u);
  EXPECT_EQ(s.per_task[0].attempts, s.per_task[0].released);
}

TEST(FaultInjection, ReexecutionConsumesProcessorTime) {
  // busy time = attempts * wcet under kAlwaysWcet.
  const SimStats s =
      Simulator({task(1000, 10, 5, 0.5)}, config(10'000'000)).run();
  EXPECT_EQ(s.busy_time,
            static_cast<Tick>(s.per_task[0].attempts) * 10);
}

TEST(FaultInjection, EmpiricalPfhCountsTemporalFailures) {
  SimConfig c = config(10 * kTicksPerHour);
  Simulator sim({task(1'000'000, 10, 1, 0.5)}, c);  // 1 s period
  const SimStats s = sim.run();
  const double pfh = sim.empirical_pfh(s, CritLevel::LO);
  // ~3600 jobs/hour at 50% failure: PFH ~ 1800.
  EXPECT_NEAR(pfh, 1800.0, 150.0);
  EXPECT_DOUBLE_EQ(sim.empirical_pfh(s, CritLevel::HI), 0.0);
}

}  // namespace
}  // namespace ftmc::sim
