/// Edge-case battery for the simulator engine: boundary semantics, mode
/// reset interactions, stale release invalidation, and tie-breaking.
#include <gtest/gtest.h>

#include "ftmc/sim/engine.hpp"

namespace ftmc::sim {
namespace {

SimTask task(const std::string& name, Tick period, Tick wcet,
             CritLevel crit = CritLevel::LO, int max_attempts = 1,
             int adapt_threshold = 1, double f = 0.0) {
  SimTask t;
  t.name = name;
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.crit = crit;
  t.max_attempts = max_attempts;
  t.adapt_threshold = adapt_threshold;
  t.failure_prob = f;
  t.virtual_deadline = period;
  return t;
}

TEST(EngineEdge, HorizonIsHalfOpen) {
  // Job releases at 0, runs 1000; horizon exactly 1000: the completion
  // event at t == horizon is outside [0, horizon) and must not count.
  SimConfig c;
  c.policy = PolicyKind::kEdf;
  c.horizon = 1000;
  Simulator sim({task("t", 10'000, 1'000)}, c);
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[0].completed, 0u);
  EXPECT_EQ(s.busy_time, 1000);  // the work itself was charged

  SimConfig c2 = c;
  c2.horizon = 1001;
  Simulator sim2({task("t", 10'000, 1'000)}, c2);
  EXPECT_EQ(sim2.run().per_task[0].completed, 1u);
}

TEST(EngineEdge, BusyTimeNeverExceedsHorizon) {
  SimConfig c;
  c.policy = PolicyKind::kEdf;
  c.horizon = 777'777;
  Simulator sim({task("a", 1000, 600), task("b", 700, 399)}, c);
  const SimStats s = sim.run();
  EXPECT_LE(s.busy_time, s.horizon);
  EXPECT_GT(s.busy_time, 0);
}

TEST(EngineEdge, DegradationEndsAtModeReset) {
  // Threshold-0 HI task triggers at every release while in LO mode; with
  // reset-on-idle the system oscillates. LO releases alternate between
  // stretched (HI mode) and normal (LO mode) gaps — total released jobs
  // must land strictly between the always-degraded and never-degraded
  // counts.
  SimConfig c;
  c.policy = PolicyKind::kEdfVd;
  c.adaptation = mcs::AdaptationKind::kDegradation;
  c.degradation_factor = 4.0;
  c.mode_reset_on_idle = true;
  c.horizon = 10'000'000;
  Simulator sim({task("hi", 10'000, 10, CritLevel::HI, 2, 0),
                 task("lo", 1'000, 10)},
                c);
  const SimStats s = sim.run();
  EXPECT_GT(s.mode_switches, 1u);
  EXPECT_GT(s.mode_resets, 0u);
  const std::uint64_t never_degraded = 10'000;
  const std::uint64_t always_degraded = 2'500;
  EXPECT_GT(s.per_task[1].released, always_degraded);
  EXPECT_LT(s.per_task[1].released, never_degraded);
}

TEST(EngineEdge, KillResetKillCycleCountsEachSwitch) {
  // Killing with reset-on-idle: each HI round (threshold 0 at release)
  // re-switches; LO tasks are re-admitted at each idle instant. The LO
  // task still makes progress between switches.
  SimConfig c;
  c.policy = PolicyKind::kEdfVd;
  c.adaptation = mcs::AdaptationKind::kKilling;
  c.mode_reset_on_idle = true;
  c.horizon = 1'000'000;
  Simulator sim({task("hi", 10'000, 10, CritLevel::HI, 2, 0),
                 task("lo", 1'000, 10)},
                c);
  const SimStats s = sim.run();
  EXPECT_EQ(s.mode_switches, 100u);  // one per HI release
  EXPECT_EQ(s.mode_resets, 100u);
  EXPECT_GT(s.per_task[1].completed, 100u);
}

TEST(EngineEdge, FixedPriorityTieBreaksByReleaseThenIndex) {
  // Two tasks with equal priority released together: the earlier index
  // wins the first slot; both still complete.
  SimTask a = task("a", 1000, 100);
  SimTask b = task("b", 1000, 100);
  a.priority = 5;
  b.priority = 5;
  SimConfig c;
  c.policy = PolicyKind::kFixedPriority;
  c.horizon = 1000;
  c.trace_capacity = 100;
  Simulator sim({a, b}, c);
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[0].completed, 1u);
  EXPECT_EQ(s.per_task[1].completed, 1u);
  for (const TraceEvent& ev : sim.trace()) {
    if (ev.kind == TraceKind::kStart) {
      EXPECT_EQ(ev.task, 0u);
      break;
    }
  }
}

TEST(EngineEdge, ModeSwitchReordersReadyQueueInstantly) {
  // Before the switch a LO job with an early absolute deadline outranks
  // the HI job (virtual deadline even earlier though). Construct the
  // opposite: HI job with LATE virtual deadline loses to LO pre-switch;
  // at the switch the HI job's true deadline (earlier than LO's) takes
  // over and it must win the processor immediately.
  SimTask hi = task("hi", 10'000, 500, CritLevel::HI, 50, 1, 0.9);
  hi.deadline = 8'000;
  hi.virtual_deadline = 8'000;  // x = 1: no VD advantage pre-switch
  SimTask lo = task("lo", 9'000, 1'000);
  lo.deadline = 3'500;  // beats the HI job in LO mode
  lo.virtual_deadline = 3'500;
  SimConfig c;
  c.policy = PolicyKind::kEdfVd;
  c.adaptation = mcs::AdaptationKind::kKilling;
  c.horizon = 9'000;
  c.trace_capacity = 1000;
  Simulator sim({hi, lo}, c);
  const SimStats s = sim.run();
  // The LO job runs first (earlier key); the HI job re-executes until it
  // succeeds (up to 50 attempts of 500 fit the horizon comfortably). If
  // any attempt faulted, the switch fired exactly once.
  EXPECT_EQ(s.per_task[0].completed, 1u);
  EXPECT_EQ(s.per_task[1].completed, 1u);  // completed before the switch
  if (s.per_task[0].faults > 0) {
    EXPECT_EQ(s.mode_switches, 1u);
  }
}

TEST(EngineEdge, ZeroUtilizationIdleGapsHandled) {
  // Long idle gaps between sparse jobs: the engine must jump over them
  // without busy-waiting (correctness proxy: exact busy time).
  SimConfig c;
  c.policy = PolicyKind::kEdf;
  c.horizon = 100'000'000;
  Simulator sim({task("sparse", 10'000'000, 5)}, c);
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[0].released, 10u);
  EXPECT_EQ(s.busy_time, 50);
}

TEST(EngineEdge, ManyTasksStressDispatch) {
  // 64 tasks at ~1.2% each: the O(n) ready-scan must stay correct under
  // heavy interleaving (checked via zero misses and full completions).
  std::vector<SimTask> tasks;
  for (int i = 0; i < 64; ++i) {
    std::string name = "t";
    name += std::to_string(i);
    tasks.push_back(task(name, 1'000 + 37 * i, 12 + (i % 5)));
  }
  SimConfig c;
  c.policy = PolicyKind::kEdf;
  c.horizon = 5'000'000;
  Simulator sim(tasks, c);
  const SimStats s = sim.run();
  for (const auto& t : s.per_task) {
    EXPECT_EQ(t.deadline_misses, 0u);
    EXPECT_GT(t.released, 0u);
  }
}

}  // namespace
}  // namespace ftmc::sim
