#include "ftmc/sim/gantt.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ftmc/common/contracts.hpp"
#include "ftmc/sim/engine.hpp"

namespace ftmc::sim {
namespace {

std::vector<std::string> lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

TEST(Gantt, RendersHandcraftedTrace) {
  // Task 0 runs [0, 50), task 1 runs [50, 100).
  const std::vector<TraceEvent> trace = {
      {0, TraceKind::kStart, 0, 0, 1},
      {50, TraceKind::kComplete, 0, 0, 0},
      {50, TraceKind::kStart, 1, 0, 1},
      {100, TraceKind::kComplete, 1, 0, 0},
  };
  GanttOptions opt;
  opt.from = 0;
  opt.to = 100;
  opt.width = 10;
  const auto out = lines(render_gantt(trace, {"a", "b"}, opt));
  ASSERT_EQ(out.size(), 4u);  // header + 2 tasks + mode row
  EXPECT_EQ(out[1], "a    |#####.....|");
  EXPECT_EQ(out[2], "b    |.....#####|");
  EXPECT_EQ(out[3], "mode |..........|");
}

TEST(Gantt, PreemptionSplitsExecution) {
  // Task 0 runs [0,30), preempted by task 1 [30,60), resumes [60,90).
  const std::vector<TraceEvent> trace = {
      {0, TraceKind::kStart, 0, 0, 1},
      {30, TraceKind::kPreempt, 0, 0, 0},
      {30, TraceKind::kStart, 1, 0, 1},
      {60, TraceKind::kComplete, 1, 0, 0},
      {60, TraceKind::kStart, 0, 0, 1},
      {90, TraceKind::kComplete, 0, 0, 0},
  };
  GanttOptions opt;
  opt.from = 0;
  opt.to = 90;
  opt.width = 9;
  const auto out = lines(render_gantt(trace, {"lo", "hi"}, opt));
  EXPECT_EQ(out[1], "lo   |###...###|");
  EXPECT_EQ(out[2], "hi   |...###...|");
}

TEST(Gantt, MarksKillAndModeSwitch) {
  const std::vector<TraceEvent> trace = {
      {0, TraceKind::kStart, 0, 0, 1},
      {40, TraceKind::kModeSwitch, 0, 0, 0},
      {40, TraceKind::kKill, 1, 0, 0},
      {80, TraceKind::kComplete, 0, 0, 0},
  };
  GanttOptions opt;
  opt.from = 0;
  opt.to = 80;
  opt.width = 8;
  const std::string text = render_gantt(trace, {"hi", "victim"}, opt);
  EXPECT_NE(text.find("victim |....X...|"), std::string::npos);
  EXPECT_NE(text.find("mode   |....!HHH|"), std::string::npos);
}

TEST(Gantt, ModeResetClosesHiRegion) {
  const std::vector<TraceEvent> trace = {
      {10, TraceKind::kModeSwitch, 0, 0, 0},
      {50, TraceKind::kModeReset, 0, 0, 0},
  };
  GanttOptions opt;
  opt.from = 0;
  opt.to = 100;
  opt.width = 10;
  const std::string text = render_gantt(trace, {"t"}, opt);
  EXPECT_NE(text.find("mode |.!HHH.....|"), std::string::npos);
}

TEST(Gantt, WindowClipsEvents) {
  const std::vector<TraceEvent> trace = {
      {0, TraceKind::kStart, 0, 0, 1},
      {1000, TraceKind::kComplete, 0, 0, 0},
  };
  GanttOptions opt;
  opt.from = 200;
  opt.to = 400;
  opt.width = 10;
  const auto out = lines(render_gantt(trace, {"t"}, opt));
  EXPECT_EQ(out[1], "t    |##########|");  // running across the window
}

TEST(Gantt, RealTraceFromSimulator) {
  SimTask a;
  a.name = "a";
  a.period = 1000;
  a.deadline = 1000;
  a.wcet = 400;
  a.virtual_deadline = 1000;
  SimTask b = a;
  b.name = "b";
  b.period = 500;
  b.wcet = 100;
  b.deadline = 500;
  b.virtual_deadline = 500;
  SimConfig cfg;
  cfg.policy = PolicyKind::kEdf;
  cfg.horizon = 2000;
  cfg.trace_capacity = 1000;
  Simulator sim({a, b}, cfg);
  sim.run();
  GanttOptions opt;
  opt.from = 0;
  opt.to = 2000;
  opt.width = 40;
  const std::string text = render_gantt(sim.trace(), {"a", "b"}, opt);
  // Both tasks executed; total '#' columns roughly match utilization.
  const auto out = lines(text);
  const auto hashes = [](const std::string& row) {
    return std::count(row.begin(), row.end(), '#');
  };
  EXPECT_GT(hashes(out[1]), 10);  // a: 0.4 of 40 cols ~ 16
  EXPECT_GT(hashes(out[2]), 4);   // b: 0.2 of 40 cols ~ 8
}

TEST(Gantt, RejectsDegenerateWindow) {
  GanttOptions opt;
  opt.from = 10;
  opt.to = 10;
  EXPECT_THROW((void)render_gantt({}, {"t"}, opt), ContractViolation);
  opt.to = 20;
  opt.width = 1;
  EXPECT_THROW((void)render_gantt({}, {"t"}, opt), ContractViolation);
}

TEST(Gantt, EmptyTraceStillRendersRows) {
  GanttOptions opt;
  opt.from = 0;
  opt.to = 100;
  opt.width = 5;
  const auto out = lines(render_gantt({}, {"t"}, opt));
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out[1], "t    |.....|");
}

}  // namespace
}  // namespace ftmc::sim
