#include "ftmc/sim/engine.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"

namespace ftmc::sim {
namespace {

SimTask task(const std::string& name, Tick period, Tick wcet,
             CritLevel crit = CritLevel::LO, int max_attempts = 1,
             int adapt_threshold = 1, double f = 0.0) {
  SimTask t;
  t.name = name;
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.crit = crit;
  t.max_attempts = max_attempts;
  t.adapt_threshold = adapt_threshold;
  t.failure_prob = f;
  t.virtual_deadline = period;
  return t;
}

SimConfig edf_config(Tick horizon) {
  SimConfig c;
  c.policy = PolicyKind::kEdf;
  c.horizon = horizon;
  c.trace_capacity = 100'000;
  return c;
}

TEST(SimEngine, SinglePeriodicTaskCompletesEveryJob) {
  Simulator sim({task("t", 1000, 100)}, edf_config(10'000));
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[0].released, 10u);
  EXPECT_EQ(s.per_task[0].completed, 10u);
  EXPECT_EQ(s.per_task[0].deadline_misses, 0u);
  EXPECT_EQ(s.per_task[0].temporal_failures(), 0u);
  EXPECT_EQ(s.busy_time, 1000);
  EXPECT_NEAR(s.utilization_observed(), 0.1, 1e-12);
}

TEST(SimEngine, TwoTasksNoMissesAtModerateLoad) {
  Simulator sim({task("a", 100, 30), task("b", 150, 40)},
                edf_config(300'000));
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[0].deadline_misses, 0u);
  EXPECT_EQ(s.per_task[1].deadline_misses, 0u);
  EXPECT_EQ(s.per_task[0].released, 3000u);
  EXPECT_EQ(s.per_task[1].released, 2000u);
}

TEST(SimEngine, EdfPrefersEarlierDeadline) {
  // At t=0 both release; EDF runs the shorter-deadline task first.
  Simulator sim({task("long", 1000, 100), task("short", 200, 50)},
                edf_config(1000));
  sim.run();
  const auto& trace = sim.trace();
  // First start event must be the short-deadline task (index 1).
  for (const TraceEvent& ev : trace) {
    if (ev.kind == TraceKind::kStart) {
      EXPECT_EQ(ev.task, 1u);
      break;
    }
  }
}

TEST(SimEngine, PreemptionOccursAndIsCounted) {
  // Long job starts alone at 0, short-deadline task arrives at 500 and
  // preempts it.
  SimTask long_task = task("long", 10'000, 2'000);
  SimTask short_task = task("short", 700, 100);
  // Shift the short task by making its first release at 0 too — EDF will
  // still run short first then long, and the next short release at 700
  // preempts the long job.
  Simulator sim({long_task, short_task}, edf_config(10'000));
  const SimStats s = sim.run();
  EXPECT_GT(s.preemptions, 0u);
  EXPECT_EQ(s.per_task[0].deadline_misses, 0u);
  EXPECT_EQ(s.per_task[1].deadline_misses, 0u);
}

TEST(SimEngine, OverloadProducesDeadlineMisses) {
  // U = 1.5: something must miss.
  Simulator sim({task("a", 100, 80), task("b", 100, 70)},
                edf_config(100'000));
  const SimStats s = sim.run();
  EXPECT_GT(s.per_task[0].deadline_misses + s.per_task[1].deadline_misses,
            0u);
}

TEST(SimEngine, DeterministicAcrossRuns) {
  const auto run_once = [] {
    SimConfig c = edf_config(1'000'000);
    c.seed = 99;
    SimTask t = task("x", 1000, 100, CritLevel::LO, 3, 3, 0.3);
    Simulator sim({t}, c);
    return sim.run();
  };
  const SimStats a = run_once();
  const SimStats b = run_once();
  EXPECT_EQ(a.per_task[0].faults, b.per_task[0].faults);
  EXPECT_EQ(a.per_task[0].completed, b.per_task[0].completed);
  EXPECT_EQ(a.busy_time, b.busy_time);
}

TEST(SimEngine, SeedChangesFaultPattern) {
  const auto run_with_seed = [](std::uint64_t seed) {
    SimConfig c = edf_config(10'000'000);
    c.seed = seed;
    Simulator sim({task("x", 1000, 100, CritLevel::LO, 2, 2, 0.3)}, c);
    return sim.run().per_task[0].faults;
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(SimEngine, TraceCapacityRespected) {
  SimConfig c = edf_config(1'000'000);
  c.trace_capacity = 10;
  Simulator sim({task("x", 1000, 100)}, c);
  sim.run();
  EXPECT_LE(sim.trace().size(), 10u);
}

TEST(SimEngine, TraceDisabledByDefaultCapacityZero) {
  SimConfig c;
  c.policy = PolicyKind::kEdf;
  c.horizon = 100'000;
  Simulator sim({task("x", 1000, 100)}, c);
  sim.run();
  EXPECT_TRUE(sim.trace().empty());
}

TEST(SimEngine, SporadicArrivalsReleaseFewerJobs) {
  SimConfig periodic = edf_config(10'000'000);
  SimConfig sporadic = edf_config(10'000'000);
  sporadic.sporadic_arrivals = true;
  sporadic.jitter_fraction = 0.5;
  const SimStats p = Simulator({task("x", 1000, 10)}, periodic).run();
  const SimStats s = Simulator({task("x", 1000, 10)}, sporadic).run();
  EXPECT_LT(s.per_task[0].released, p.per_task[0].released);
  EXPECT_GT(s.per_task[0].released, p.per_task[0].released / 3);
}

TEST(SimEngine, FixedPriorityHonorsPriorities) {
  // Lower priority value = more important. Give the long task the top
  // priority: the short task must miss.
  SimTask hog = task("hog", 1000, 800);
  hog.priority = 0;
  SimTask victim = task("victim", 500, 300);
  victim.priority = 1;
  SimConfig c;
  c.policy = PolicyKind::kFixedPriority;
  c.horizon = 100'000;
  const SimStats s = Simulator({hog, victim}, c).run();
  EXPECT_EQ(s.per_task[0].deadline_misses, 0u);
  EXPECT_GT(s.per_task[1].deadline_misses, 0u);
}

TEST(SimEngine, RunTwiceRejected) {
  Simulator sim({task("x", 1000, 100)}, edf_config(10'000));
  sim.run();
  EXPECT_THROW(sim.run(), ContractViolation);
}

TEST(SimEngine, RejectsMalformedConfig) {
  SimConfig c;
  c.horizon = 0;
  EXPECT_THROW(Simulator({task("x", 1000, 100)}, c), ContractViolation);
  EXPECT_THROW(Simulator({}, edf_config(1000)), ContractViolation);
  SimTask bad = task("x", 1000, 100);
  bad.failure_prob = 1.0;
  EXPECT_THROW(Simulator({bad}, edf_config(1000)), ContractViolation);
}

TEST(SimEngine, UniformExecModelShortensBusyTime) {
  SimConfig wcet_cfg = edf_config(10'000'000);
  SimConfig uni_cfg = edf_config(10'000'000);
  uni_cfg.exec_model = ExecTimeModel::kUniform;
  uni_cfg.exec_min_fraction = 0.2;
  const SimStats w = Simulator({task("x", 1000, 500)}, wcet_cfg).run();
  const SimStats u = Simulator({task("x", 1000, 500)}, uni_cfg).run();
  EXPECT_LT(u.busy_time, w.busy_time);
  EXPECT_GT(u.busy_time, w.busy_time / 5);
}

TEST(SimEngine, EmpiricalPfhZeroWithoutFaults) {
  Simulator sim({task("x", 1000, 100)}, edf_config(sim::kTicksPerHour));
  const SimStats s = sim.run();
  EXPECT_DOUBLE_EQ(sim.empirical_pfh(s, CritLevel::LO), 0.0);
}

}  // namespace
}  // namespace ftmc::sim
