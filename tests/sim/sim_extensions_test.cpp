/// Tests for the simulator extensions: response-time statistics, random
/// initial phasing, and CSV trace export.
#include <gtest/gtest.h>

#include <sstream>

#include "ftmc/sim/engine.hpp"

namespace ftmc::sim {
namespace {

SimTask task(const std::string& name, Tick period, Tick wcet,
             double f = 0.0) {
  SimTask t;
  t.name = name;
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.crit = CritLevel::LO;
  t.max_attempts = 1;
  t.adapt_threshold = 1;
  t.failure_prob = f;
  t.virtual_deadline = period;
  return t;
}

SimConfig edf(Tick horizon) {
  SimConfig c;
  c.policy = PolicyKind::kEdf;
  c.horizon = horizon;
  return c;
}

TEST(ResponseTimes, SingleTaskResponseIsWcet) {
  Simulator sim({task("t", 1000, 100)}, edf(100'000));
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[0].max_response, 100);
  EXPECT_DOUBLE_EQ(s.per_task[0].avg_response(), 100.0);
}

TEST(ResponseTimes, InterferenceInflatesLowerPriorityResponse) {
  // Short task (D=200) preempts the long one at each of its releases
  // 0..600; at t=800 the short job's absolute deadline (1000) ties the
  // long job's, and EDF breaks the tie toward the earlier release — the
  // long job finishes at 900 (response 900), the t=800 short job at 1000
  // (response 200).
  Simulator sim({task("long", 1000, 500), task("short", 200, 100)},
                edf(100'000));
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[0].max_response, 900);
  EXPECT_EQ(s.per_task[1].max_response, 200);
  EXPECT_GE(s.per_task[0].avg_response(), 500.0);
}

TEST(ResponseTimes, MaxResponseBoundsAvg) {
  Simulator sim({task("a", 700, 150), task("b", 1100, 250)},
                edf(10'000'000));
  const SimStats s = sim.run();
  for (const auto& t : s.per_task) {
    EXPECT_GE(static_cast<double>(t.max_response), t.avg_response());
  }
}

TEST(ResponseTimes, ZeroWhenNothingCompletes) {
  TaskStats fresh;
  EXPECT_DOUBLE_EQ(fresh.avg_response(), 0.0);
}

TEST(RandomPhasing, FirstReleasesSpreadOut) {
  SimConfig c = edf(10'000);
  c.random_phasing = true;
  c.seed = 5;
  c.trace_capacity = 100;
  Simulator sim({task("a", 5000, 10), task("b", 5000, 10),
                 task("c", 5000, 10)},
                c);
  sim.run();
  // Collect first release times; with 3 tasks and T = 5000 us the chance
  // of all three drawing 0 is (1/5000)^3 — effectively never.
  std::vector<Tick> first(3, -1);
  for (const auto& ev : sim.trace()) {
    if (ev.kind == TraceKind::kRelease && first[ev.task] < 0) {
      first[ev.task] = ev.time;
    }
  }
  EXPECT_TRUE(first[0] != first[1] || first[1] != first[2]);
  for (const Tick t : first) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 5000);
  }
}

TEST(RandomPhasing, DisabledMeansSynchronous) {
  SimConfig c = edf(10'000);
  c.trace_capacity = 100;
  Simulator sim({task("a", 5000, 10), task("b", 3000, 10)}, c);
  sim.run();
  for (const auto& ev : sim.trace()) {
    if (ev.kind == TraceKind::kRelease && ev.job == 0) {
      EXPECT_EQ(ev.time, 0);
    }
  }
}

TEST(RandomPhasing, PhasedRunStillCompletesAllJobs) {
  SimConfig c = edf(10'000'000);
  c.random_phasing = true;
  c.seed = 9;
  Simulator sim({task("a", 1000, 200), task("b", 1700, 300)}, c);
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[0].deadline_misses, 0u);
  EXPECT_EQ(s.per_task[1].deadline_misses, 0u);
  EXPECT_GT(s.per_task[0].completed, 9'000u);
}

TEST(TraceCsv, WellFormedOutput) {
  SimConfig c = edf(3'000);
  c.trace_capacity = 1000;
  Simulator sim({task("alpha", 1000, 100)}, c);
  sim.run();
  std::ostringstream os;
  write_trace_csv(os, sim.trace(), {"alpha"});
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("time_us,kind,task,task_name,job,detail\n", 0), 0u);
  EXPECT_NE(text.find("release,0,alpha,0"), std::string::npos);
  EXPECT_NE(text.find("complete,0,alpha"), std::string::npos);
  // Row count = header + trace size.
  const auto rows = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(rows), sim.trace().size() + 1);
}

TEST(TraceCsv, MissingNamesLeftEmpty) {
  std::ostringstream os;
  write_trace_csv(os, {{5, TraceKind::kStart, 2, 7, 1}}, {});
  EXPECT_NE(os.str().find("5,start,2,,7,1"), std::string::npos);
}

}  // namespace
}  // namespace ftmc::sim
