#include "ftmc/sim/partitioned_sim.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"

namespace ftmc::sim {
namespace {

SimTask task(const std::string& name, Tick period, Tick wcet,
             CritLevel crit = CritLevel::LO, int max_attempts = 1,
             int adapt_threshold = 1, double f = 0.0) {
  SimTask t;
  t.name = name;
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.crit = crit;
  t.max_attempts = max_attempts;
  t.adapt_threshold = adapt_threshold;
  t.failure_prob = f;
  t.virtual_deadline = period;
  return t;
}

SimConfig config(Tick horizon) {
  SimConfig c;
  c.policy = PolicyKind::kEdfVd;
  c.adaptation = mcs::AdaptationKind::kKilling;
  c.horizon = horizon;
  return c;
}

TEST(PartitionedSim, IndependentCoresCarryOverload) {
  // Each task alone uses 80% of a core; together they overload one core
  // but run cleanly on two.
  const std::vector<SimTask> tasks = {task("a", 1000, 800),
                                      task("b", 1000, 800)};
  const auto one_core =
      simulate_partitioned(tasks, {0, 0}, 1, config(1'000'000));
  std::uint64_t misses_one = 0;
  for (const auto& t : one_core.per_core[0].per_task) {
    misses_one += t.deadline_misses;
  }
  EXPECT_GT(misses_one, 0u);

  const auto two_cores =
      simulate_partitioned(tasks, {0, 1}, 2, config(1'000'000));
  for (const auto& core_stats : two_cores.per_core) {
    for (const auto& t : core_stats.per_task) {
      EXPECT_EQ(t.deadline_misses, 0u);
    }
  }
}

TEST(PartitionedSim, ModeSwitchScopedToOneCore) {
  // Core 0: a HI task that triggers immediately + a LO victim.
  // Core 1: a LO task only. The kill must not reach core 1.
  const std::vector<SimTask> tasks = {
      task("hi", 1000, 10, CritLevel::HI, 2, 0, 0.0),
      task("victim", 500, 10),
      task("survivor", 500, 10),
  };
  const auto stats = simulate_partitioned(tasks, {0, 0, 1}, 2,
                                          config(1'000'000));
  EXPECT_EQ(stats.total_mode_switches, 1u);
  // Victim on core 0 never runs (switch at t=0 suppresses it).
  EXPECT_EQ(stats.per_core[0].per_task[1].completed, 0u);
  // Survivor on core 1 runs to the end.
  EXPECT_EQ(stats.per_core[1].per_task[0].completed, 2000u);
}

TEST(PartitionedSim, AggregatesPfhAcrossCores) {
  const std::vector<SimTask> tasks = {
      task("l0", 1'000'000, 100, CritLevel::LO, 1, 1, 0.5),
      task("l1", 1'000'000, 100, CritLevel::LO, 1, 1, 0.5),
  };
  const auto stats = simulate_partitioned(tasks, {0, 1}, 2,
                                          config(kTicksPerHour));
  // Each task: 3600 jobs/hour at 50% failure -> total ~3600 failures/hr.
  EXPECT_NEAR(stats.pfh_lo, 3600.0, 200.0);
  EXPECT_DOUBLE_EQ(stats.pfh_hi, 0.0);
}

TEST(PartitionedSim, UnassignedTasksSkipped) {
  const std::vector<SimTask> tasks = {task("a", 1000, 100),
                                      task("ghost", 1000, 100)};
  const auto stats =
      simulate_partitioned(tasks, {0, -1}, 1, config(10'000));
  ASSERT_EQ(stats.per_core.size(), 1u);
  ASSERT_EQ(stats.per_core[0].per_task.size(), 1u);  // only task "a"
}

TEST(PartitionedSim, EmptyCoreProducesIdleStats) {
  const std::vector<SimTask> tasks = {task("a", 1000, 100)};
  const auto stats = simulate_partitioned(tasks, {0}, 3, config(10'000));
  ASSERT_EQ(stats.per_core.size(), 3u);
  EXPECT_EQ(stats.per_core[1].busy_time, 0);
  EXPECT_EQ(stats.per_core[2].busy_time, 0);
}

TEST(PartitionedSim, RejectsBadInput) {
  const std::vector<SimTask> tasks = {task("a", 1000, 100)};
  EXPECT_THROW((void)simulate_partitioned(tasks, {0}, 0, config(10'000)),
               ContractViolation);
  EXPECT_THROW((void)simulate_partitioned(tasks, {}, 1, config(10'000)),
               ContractViolation);
  EXPECT_THROW((void)simulate_partitioned(tasks, {5}, 2, config(10'000)),
               ContractViolation);
}

}  // namespace
}  // namespace ftmc::sim
