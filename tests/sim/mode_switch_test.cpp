#include <gtest/gtest.h>

#include "ftmc/sim/engine.hpp"

namespace ftmc::sim {
namespace {

SimTask hi_task(Tick period, Tick wcet, int max_attempts,
                int adapt_threshold, double f) {
  SimTask t;
  t.name = "hi";
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.crit = CritLevel::HI;
  t.max_attempts = max_attempts;
  t.adapt_threshold = adapt_threshold;
  t.failure_prob = f;
  t.virtual_deadline = period;
  return t;
}

SimTask lo_task(Tick period, Tick wcet) {
  SimTask t;
  t.name = "lo";
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.crit = CritLevel::LO;
  t.max_attempts = 1;
  t.adapt_threshold = 1;
  t.failure_prob = 0.0;
  t.virtual_deadline = period;
  return t;
}

SimConfig config(mcs::AdaptationKind kind, Tick horizon,
                 double df = 1.0) {
  SimConfig c;
  c.policy = PolicyKind::kEdfVd;
  c.adaptation = kind;
  c.degradation_factor = df;
  c.horizon = horizon;
  c.trace_capacity = 1'000'000;
  return c;
}

TEST(ModeSwitch, HighFailureTriggersSwitch) {
  // f = 0.9, n' = 1: the second attempt of a HI job (prob 0.9 per job)
  // triggers the switch almost immediately.
  Simulator sim({hi_task(1000, 10, 3, 1, 0.9), lo_task(500, 10)},
                config(mcs::AdaptationKind::kKilling, 10'000'000));
  const SimStats s = sim.run();
  EXPECT_EQ(s.mode_switches, 1u);  // latched: exactly one transition
  EXPECT_LT(s.first_mode_switch, 100'000);
}

TEST(ModeSwitch, NeverTriggersWhenThresholdEqualsMaxAttempts) {
  // n' = n: a job never *starts* an (n+1)-th attempt.
  Simulator sim({hi_task(1000, 10, 3, 3, 0.9), lo_task(500, 10)},
                config(mcs::AdaptationKind::kKilling, 10'000'000));
  const SimStats s = sim.run();
  EXPECT_EQ(s.mode_switches, 0u);
  EXPECT_EQ(s.per_task[1].killed, 0u);
  EXPECT_GT(s.per_task[1].completed, 0u);
}

TEST(ModeSwitch, ThresholdZeroSwitchesAtFirstHiRelease) {
  Simulator sim({hi_task(1000, 10, 2, 0, 0.0), lo_task(500, 10)},
                config(mcs::AdaptationKind::kKilling, 1'000'000));
  const SimStats s = sim.run();
  EXPECT_EQ(s.mode_switches, 1u);
  EXPECT_EQ(s.first_mode_switch, 0);
}

TEST(ModeSwitch, ImmediateSwitchSuppressesLoTasksEntirely) {
  // Threshold 0 with the HI task releasing first at t=0: the switch fires
  // before the simultaneous LO release, so no LO job ever exists.
  Simulator sim({hi_task(1000, 10, 3, 0, 0.0), lo_task(500, 10)},
                config(mcs::AdaptationKind::kKilling, 10'000'000));
  const SimStats s = sim.run();
  EXPECT_EQ(s.per_task[1].released, 0u);
  EXPECT_EQ(s.per_task[1].completed, 0u);
  // The HI task continues unharmed.
  EXPECT_EQ(s.per_task[0].released, 10'000u);
  EXPECT_EQ(s.per_task[0].completed, 10'000u);
}

TEST(ModeSwitch, KillingDiscardsAlreadyReleasedLoJobs) {
  // Switch mid-run: the HI task (n' = 1) almost surely fails its first
  // attempt (f = 0.999) at t = 10 and kills the LO job released at t = 0
  // (whose WCET of 5000 keeps it pending).
  Simulator sim({hi_task(1000, 10, 3, 1, 0.999), lo_task(100'000, 5'000)},
                config(mcs::AdaptationKind::kKilling, 10'000'000));
  const SimStats s = sim.run();
  ASSERT_EQ(s.mode_switches, 1u);
  EXPECT_EQ(s.per_task[1].released, 1u);
  EXPECT_EQ(s.per_task[1].killed, 1u);
  EXPECT_EQ(s.per_task[1].completed, 0u);
}

TEST(ModeSwitch, DegradationStretchesLoPeriods) {
  const Tick horizon = 100'000'000;
  Simulator sim({hi_task(1000, 10, 3, 0, 0.0), lo_task(1000, 10)},
                config(mcs::AdaptationKind::kDegradation, horizon, 4.0));
  const SimStats s = sim.run();
  // Switch at t=0: LO releases at ~4000-tick spacing instead of 1000.
  const double expected = static_cast<double>(horizon) / 4000.0;
  EXPECT_NEAR(static_cast<double>(s.per_task[1].released), expected,
              expected * 0.01 + 2.0);
  // Degradation kills nothing.
  EXPECT_EQ(s.per_task[1].killed, 0u);
  EXPECT_EQ(s.per_task[1].completed, s.per_task[1].released);
}

TEST(ModeSwitch, DegradationKeepsCurrentLoJobRunning) {
  // LO job released at t=0 with a long WCET; the switch happens at t=10
  // (HI fails its first attempt, n' = 1). Under degradation (unlike
  // killing) the already-released job still completes.
  Simulator sim({hi_task(1000, 10, 3, 1, 0.999), lo_task(100'000, 5'000)},
                config(mcs::AdaptationKind::kDegradation, 50'000, 4.0));
  const SimStats s = sim.run();
  ASSERT_EQ(s.mode_switches, 1u);
  EXPECT_EQ(s.per_task[1].released, 1u);
  EXPECT_EQ(s.per_task[1].completed, 1u);
  EXPECT_EQ(s.per_task[1].killed, 0u);
}

TEST(ModeSwitch, ModeResetOnIdleReadmitsLoTasks) {
  SimConfig c = config(mcs::AdaptationKind::kKilling, 10'000'000);
  c.mode_reset_on_idle = true;
  // HI task fails its first attempt with p=0.5 and may trigger (n'=1);
  // after the burst drains, the processor idles and LO resumes.
  c.seed = 3;
  Simulator sim({hi_task(1000, 10, 3, 1, 0.5), lo_task(500, 10)}, c);
  const SimStats s = sim.run();
  ASSERT_GT(s.mode_switches, 1u);  // switched, reset, switched again ...
  EXPECT_GT(s.mode_resets, 0u);
  // LO releases resume after resets: far more than the pre-switch couple.
  EXPECT_GT(s.per_task[1].completed, 100u);
}

TEST(ModeSwitch, DegradationStretchesLoDeadlinesToo) {
  // Degraded service relaxes both the LO rate AND the LO due date: a LO
  // job in HI mode is due d_f * D after release (elastic model of [12],
  // the semantics Eq. (12) analyzes), so a job that finishes after D but
  // before d_f * D is on time, not a miss.
  // Here: switch at t = 0 (n' = 0), the LO job needs 1500 ticks of
  // service against an undegraded deadline of 1000 but a degraded one
  // of 4000 -> zero misses.
  Simulator sim({hi_task(10'000, 10, 3, 0, 0.0), lo_task(1'000, 1'500)},
                config(mcs::AdaptationKind::kDegradation, 20'000, 4.0));
  const SimStats s = sim.run();
  ASSERT_EQ(s.mode_switches, 1u);
  EXPECT_GE(s.per_task[1].completed, 1u);
  EXPECT_EQ(s.per_task[1].deadline_misses, 0u);
}

TEST(ModeSwitch, LatchedModeWithoutResetOption) {
  SimConfig c = config(mcs::AdaptationKind::kKilling, 10'000'000);
  c.seed = 3;
  Simulator sim({hi_task(1000, 10, 3, 1, 0.5), lo_task(500, 10)}, c);
  const SimStats s = sim.run();
  EXPECT_EQ(s.mode_switches, 1u);
  EXPECT_EQ(s.mode_resets, 0u);
}

TEST(ModeSwitch, EdfVdUsesVirtualDeadlinesInLoMode) {
  // HI task with a tiny virtual deadline must run before a LO task whose
  // absolute deadline is earlier than the HI task's true deadline.
  SimTask hi = hi_task(10'000, 100, 1, 1, 0.0);
  hi.virtual_deadline = 500;  // x ~ 0.05
  SimTask lo = lo_task(2'000, 100);
  SimConfig c = config(mcs::AdaptationKind::kKilling, 10'000);
  Simulator sim({hi, lo}, c);
  sim.run();
  for (const TraceEvent& ev : sim.trace()) {
    if (ev.kind == TraceKind::kStart) {
      EXPECT_EQ(ev.task, 0u);  // HI first despite later true deadline
      break;
    }
  }
}

TEST(ModeSwitch, TraceContainsSwitchAndKillEvents) {
  Simulator sim({hi_task(1000, 10, 3, 1, 0.999), lo_task(100'000, 5'000)},
                config(mcs::AdaptationKind::kKilling, 1'000'000));
  sim.run();
  bool saw_switch = false, saw_kill = false;
  for (const TraceEvent& ev : sim.trace()) {
    saw_switch |= ev.kind == TraceKind::kModeSwitch;
    saw_kill |= ev.kind == TraceKind::kKill;
  }
  EXPECT_TRUE(saw_switch);
  EXPECT_TRUE(saw_kill);
}

}  // namespace
}  // namespace ftmc::sim
