#include "ftmc/exec/seed.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <random>
#include <set>
#include <vector>

namespace ftmc::exec {
namespace {

// The naive `base + index` scheme collides exactly here: campaign(seed=1)
// mission 1 and campaign(seed=2) mission 0 would share one stream, and
// adjacent campaigns would share all but one stream.
TEST(DeriveSeed, AdjacentBaseSeedsDoNotCollide) {
  EXPECT_NE(derive_seed(1, 1), derive_seed(2, 0));
  for (std::uint64_t m = 0; m < 64; ++m) {
    EXPECT_NE(derive_seed(1, m + 1), derive_seed(2, m));
  }
}

TEST(DeriveSeed, StreamsOfAdjacentCampaignsDiffer) {
  // The regression the fix is about: the *mission RNG streams* of
  // campaigns with base seeds 1 and 2 must not overlap. Compare the
  // first outputs of the engines each mission would construct.
  std::mt19937_64 mission_1_of_seed_1(derive_seed(1, 1));
  std::mt19937_64 mission_0_of_seed_2(derive_seed(2, 0));
  bool any_difference = false;
  for (int draw = 0; draw < 8; ++draw) {
    any_difference |= mission_1_of_seed_1() != mission_0_of_seed_2();
  }
  EXPECT_TRUE(any_difference);
}

TEST(DeriveSeed, IsConstexprAndPure) {
  static_assert(derive_seed(1, 2) == derive_seed(1, 2));
  static_assert(derive_seed(0, 0) != derive_seed(0, 1));
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
}

TEST(DeriveSeed, NoCollisionsAcrossRealisticCampaignWindow) {
  // 16 campaigns x 1024 missions: all 16384 derived seeds distinct.
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 16; ++base) {
    for (std::uint64_t m = 0; m < 1024; ++m) {
      EXPECT_TRUE(seen.insert(derive_seed(base, m)).second)
          << "collision at base=" << base << " m=" << m;
    }
  }
}

TEST(DeriveSeed, OutputBitsAreBalanced) {
  // Distribution sanity: over many derived seeds every output bit should
  // be set roughly half the time (SplitMix64 is equidistributed; this
  // catches e.g. an accidental truncation or a stuck high word).
  constexpr int kSamples = 4096;
  std::vector<int> ones(64, 0);
  for (std::uint64_t m = 0; m < kSamples; ++m) {
    const std::uint64_t s = derive_seed(1, m);
    for (int b = 0; b < 64; ++b) ones[b] += (s >> b) & 1u;
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_GT(ones[b], kSamples * 2 / 5) << "bit " << b;
    EXPECT_LT(ones[b], kSamples * 3 / 5) << "bit " << b;
  }
}

TEST(DeriveSeed, AvalancheBetweenConsecutiveIndices) {
  // Consecutive indices should flip ~32 of 64 bits on average.
  constexpr int kSamples = 2048;
  std::uint64_t flipped = 0;
  for (std::uint64_t m = 0; m < kSamples; ++m) {
    flipped += std::popcount(derive_seed(9, m) ^ derive_seed(9, m + 1));
  }
  const double mean = static_cast<double>(flipped) / kSamples;
  EXPECT_GT(mean, 28.0);
  EXPECT_LT(mean, 36.0);
}

}  // namespace
}  // namespace ftmc::exec
