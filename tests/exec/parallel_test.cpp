#include "ftmc/exec/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ftmc::exec {
namespace {

ParallelOptions with_threads(int threads) {
  ParallelOptions opt;
  opt.threads = threads;
  return opt;
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 7}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(hits.size(), with_threads(threads),
                 [&](std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     hits[i].fetch_add(1);
                   }
                 });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  bool called = false;
  parallel_for(0, with_threads(4),
               [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesBodyException) {
  EXPECT_THROW(
      parallel_for(256, with_threads(4),
                   [](std::size_t begin, std::size_t) {
                     if (begin >= 128) {
                       throw std::runtime_error("boom");
                     }
                   }),
      std::runtime_error);
  // The failed region must leave no stuck threads behind: a fresh region
  // still works.
  std::atomic<int> n{0};
  parallel_for(64, with_threads(4),
               [&](std::size_t begin, std::size_t end) {
                 n.fetch_add(static_cast<int>(end - begin));
               });
  EXPECT_EQ(n.load(), 64);
}

TEST(ParallelFor, SerialPathPropagatesException) {
  EXPECT_THROW(parallel_for(8, with_threads(1),
                            [](std::size_t, std::size_t) {
                              throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelFor, RecordsRunStats) {
  RunStats stats;
  ParallelOptions opt;
  opt.threads = 2;
  opt.chunk_size = 10;
  opt.stats = &stats;
  opt.phase = "unit";
  parallel_for(95, opt, [](std::size_t, std::size_t) {});
  const PhaseStats s = stats.phase("unit");
  EXPECT_EQ(s.items, 95u);
  EXPECT_EQ(s.chunks, 10u);  // ceil(95 / 10)
  EXPECT_EQ(s.regions, 1u);
  EXPECT_GE(s.threads, 1);
  EXPECT_GE(s.wall_seconds, 0.0);
  EXPECT_EQ(stats.phase("absent").items, 0u);
  EXPECT_NE(stats.summary().find("unit"), std::string::npos);
}

TEST(ParallelMapReduce, MatchesSerialSumExactly) {
  // Non-associative double accumulation: the parallel fold must be
  // bit-identical to the threads = 1 fold (same chunk tree, merge in
  // chunk order).
  const auto map = [](std::size_t i) {
    return std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / (1.0 + i);
  };
  const auto merge = [](double& into, double&& from) { into += from; };
  const double serial =
      parallel_map_reduce<double>(10'000, with_threads(1), map, merge);
  for (const int threads : {2, 3, 8}) {
    const double parallel =
        parallel_map_reduce<double>(10'000, with_threads(threads), map,
                                    merge);
    EXPECT_EQ(serial, parallel) << "threads = " << threads;
  }
}

TEST(ParallelMapReduce, EmptyRangeReturnsDefault) {
  const auto r = parallel_map_reduce<int>(
      0, with_threads(4), [](std::size_t) { return 1; },
      [](int& a, int&& b) { a += b; });
  EXPECT_EQ(r, 0);
}

TEST(ParallelMapReduce, SingleItem) {
  const auto r = parallel_map_reduce<int>(
      1, with_threads(8), [](std::size_t i) { return static_cast<int>(i) + 41; },
      [](int& a, int&& b) { a += b; });
  EXPECT_EQ(r, 41);
}

TEST(ParallelOptionsTest, ResolveHelpers) {
  EXPECT_GE(resolve_threads(0), 1);
  EXPECT_GE(resolve_threads(-5), 1);
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_chunk(0), 16u);
  EXPECT_EQ(resolve_chunk(5), 5u);
}

}  // namespace
}  // namespace ftmc::exec
