#include "ftmc/exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "ftmc/common/contracts.hpp"

namespace ftmc::exec {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    for (int i = 1; i <= 100; ++i) {
      pool.submit([&sum, i] { sum.fetch_add(i); });
    }
  }  // destructor drains + joins
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  // Even tasks still queued when the destructor runs must execute: the
  // parallel_for layer relies on pool destruction as its completion
  // barrier.
  std::atomic<int> executed{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        executed.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(executed.load(), 50);
}

TEST(ThreadPool, CountsExecutedTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) pool.submit([&done] { done.fetch_add(1); });
  while (done.load() < 10) std::this_thread::yield();
  // All ten observed done; the counter is bumped after each task body.
  while (pool.tasks_executed() < 10) std::this_thread::yield();
  EXPECT_EQ(pool.tasks_executed(), 10u);
}

TEST(ThreadPool, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadPool(0), ContractViolation);
  EXPECT_THROW(ThreadPool(-3), ContractViolation);
}

TEST(ThreadPool, RejectsEmptyTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(std::function<void()>{}), ContractViolation);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPool, RepeatedConstructionAndShutdownIsSafe) {
  // Shutdown-safety stress: many short-lived pools, some never used.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    if (round % 2 == 0) {
      std::atomic<int> n{0};
      for (int i = 0; i < 8; ++i) pool.submit([&n] { n.fetch_add(1); });
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ftmc::exec
