#include <gtest/gtest.h>

#include "ftmc/check/shrink.hpp"

namespace ftmc::check {
namespace {

/// Synthetic failure marker: the property fails while the set still
/// contains a task with WCET >= 4 ms. One specific "culprit" shape lets
/// the tests reason about what the minimal case must look like.
Outcome fails_on_fat_task(const Case& c, const PropertyContext&) {
  for (const core::FtTask& t : c.ts.tasks()) {
    if (t.wcet >= 4.0) {
      return Outcome::fail("fat task present: " + t.name);
    }
  }
  return Outcome::pass();
}

Property marker_property() {
  Property p;
  p.name = "fails_on_fat_task";
  p.family = kFamilyAnalysisVsSim;
  p.doc = "test marker";
  p.fn = &fails_on_fat_task;
  return p;
}

Case fat_case() {
  Case c;
  c.ts = core::FtTaskSet({{"t1", 100.0, 100.0, 1.0, Dal::B, 1e-4},
                          {"t2", 200.0, 200.0, 2.0, Dal::C, 1e-4},
                          {"fat", 331.0, 331.0, 17.3, Dal::B, 1e-4},
                          {"t4", 400.0, 400.0, 3.0, Dal::C, 1e-4},
                          {"t5", 500.0, 500.0, 1.5, Dal::C, 1e-4},
                          {"t6", 617.0, 617.0, 2.0, Dal::B, 1e-4}},
                         {Dal::B, Dal::C});
  c.seed = 42;
  c.index = 9;
  return c;
}

TEST(Shrink, MinimalCaseStillFailsAndIsOneTask) {
  const Property p = marker_property();
  PropertyContext ctx;
  const ShrinkResult r = shrink_case(fat_case(), p, ctx);

  // Still failing (the shrinker's invariant) ...
  EXPECT_EQ(p.run(r.minimal, ctx).verdict, Verdict::kFail);
  // ... and down to the single culprit task,
  ASSERT_EQ(r.minimal.ts.size(), 1u);
  EXPECT_EQ(r.minimal.ts[0].name, "fat");
  // ... whose WCET was halved to just above the failure threshold
  // (one more halving of anything >= 8 lands below 4... so < 8).
  EXPECT_GE(r.minimal.ts[0].wcet, 4.0);
  EXPECT_LT(r.minimal.ts[0].wcet, 8.0);
  // ... and whose awkward period got rounded to something readable.
  EXPECT_DOUBLE_EQ(r.minimal.ts[0].period,
                   static_cast<double>(static_cast<int>(
                       r.minimal.ts[0].period)));
  EXPECT_GT(r.accepted, 0);
  EXPECT_GT(r.evaluations, r.accepted);
}

TEST(Shrink, MetadataSurvivesShrinking) {
  const Property p = marker_property();
  PropertyContext ctx;
  const ShrinkResult r = shrink_case(fat_case(), p, ctx);
  EXPECT_EQ(r.minimal.seed, 42u);
  EXPECT_EQ(r.minimal.index, 9u);
}

TEST(Shrink, RespectsTheEvaluationBudget) {
  const Property p = marker_property();
  PropertyContext ctx;
  ShrinkOptions opt;
  opt.max_evaluations = 3;
  const ShrinkResult r = shrink_case(fat_case(), p, ctx, opt);
  EXPECT_LE(r.evaluations, 3);
  // Whatever it managed, the result still fails.
  EXPECT_EQ(p.run(r.minimal, ctx).verdict, Verdict::kFail);
}

TEST(Shrink, AlreadyMinimalCaseIsAFixedPoint) {
  Case c;
  c.ts = core::FtTaskSet({{"fat", 100.0, 100.0, 4.0, Dal::B, 1e-4}},
                         {Dal::B, Dal::C});
  const Property p = marker_property();
  PropertyContext ctx;
  const ShrinkResult r = shrink_case(c, p, ctx);
  ASSERT_EQ(r.minimal.ts.size(), 1u);
  // WCET 4.0 is exactly at the failure boundary: halving leaves the
  // failing region, so the shrinker must keep it.
  EXPECT_DOUBLE_EQ(r.minimal.ts[0].wcet, 4.0);
}

}  // namespace
}  // namespace ftmc::check
