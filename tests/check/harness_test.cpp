#include <gtest/gtest.h>

#include "ftmc/check/harness.hpp"
#include "ftmc/io/taskset_io.hpp"

namespace ftmc::check {
namespace {

TEST(Harness, CleanSweepPassesAndCountsAddUp) {
  HarnessOptions opt;
  opt.seed = 42;
  opt.cases = 300;
  opt.threads = 2;
  const HarnessResult r = run_harness(opt);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.cases_run, 300u);
  EXPECT_FALSE(r.budget_exhausted);
  ASSERT_FALSE(r.selected.empty());
  // Every (case, property) pair yields exactly one verdict.
  EXPECT_EQ(r.checks_pass + r.checks_fail + r.checks_skip,
            r.cases_run * r.selected.size());
  EXPECT_EQ(r.checks_fail, 0u);
  EXPECT_GT(r.checks_pass, 0u);
}

TEST(Harness, VerdictsAreThreadCountInvariant) {
  HarnessOptions serial;
  serial.seed = 99;
  serial.cases = 150;
  serial.threads = 1;
  HarnessOptions parallel = serial;
  parallel.threads = 4;
  const HarnessResult a = run_harness(serial);
  const HarnessResult b = run_harness(parallel);
  EXPECT_EQ(a.checks_pass, b.checks_pass);
  EXPECT_EQ(a.checks_fail, b.checks_fail);
  EXPECT_EQ(a.checks_skip, b.checks_skip);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(Harness, FamilySelectionRestrictsAndUnknownNamesThrow) {
  HarnessOptions opt;
  opt.seed = 1;
  opt.cases = 20;
  opt.families = {std::string(kFamilyPfhMetamorphic)};
  const HarnessResult r = run_harness(opt);
  for (const std::string& name : r.selected) {
    const Property* p = find_property(name);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->family, kFamilyPfhMetamorphic);
  }
  EXPECT_THROW(select_properties({"no-such-family"}, {}),
               ContractViolation);
  EXPECT_THROW(select_properties({}, {"no-such-property"}),
               ContractViolation);
}

TEST(Harness, BudgetModeStopsEarlyAtACaseBoundary) {
  HarnessOptions opt;
  opt.seed = 3;
  opt.cases = 1'000'000;  // the budget, not this cap, must stop the run
  opt.budget_sec = 0.15;
  opt.threads = 2;
  const HarnessResult r = run_harness(opt);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_LT(r.cases_run, 1'000'000u);
  EXPECT_GT(r.cases_run, 0u);
  EXPECT_EQ(r.checks_pass + r.checks_fail + r.checks_skip,
            r.cases_run * r.selected.size());
}

TEST(Harness, InjectedBugIsFoundShrunkAndReplayable) {
  HarnessOptions opt;
  opt.seed = 5;
  opt.cases = 150;
  opt.threads = 2;
  opt.bugs.drop_reexec_term = true;
  const HarnessResult r = run_harness(opt);

  // The self-test teeth: the corrupted analysis must be caught ...
  ASSERT_FALSE(r.ok());
  ASSERT_FALSE(r.failures.empty());

  for (const FailureRecord& f : r.failures) {
    // ... by a differential family (metamorphic PFH properties do not
    // depend on the schedulability conversion under test),
    EXPECT_NE(f.family, kFamilyPfhMetamorphic) << f.property;
    // ... shrunk to a handful of tasks,
    EXPECT_LE(f.minimal.ts.size(), 4u) << f.property;
    EXPECT_LE(f.minimal.ts.size(), f.original.ts.size());
    EXPECT_FALSE(f.message.empty());

    // ... and the repro file round-trips to the same failing verdict.
    const std::string text = repro_to_string(f);
    const Repro repro = parse_repro(text);
    EXPECT_EQ(repro.property, f.property);
    EXPECT_EQ(repro.base_seed, 5u);
    EXPECT_EQ(repro.c.index, f.minimal.index);
    EXPECT_EQ(repro.c.n_hi, f.minimal.n_hi);
    EXPECT_EQ(io::task_set_to_string(repro.c.ts),
              io::task_set_to_string(f.minimal.ts));

    PropertyContext buggy;
    buggy.bugs = opt.bugs;
    EXPECT_EQ(replay_repro(repro, buggy).verdict, Verdict::kFail)
        << f.property;
  }
}

TEST(Harness, FailureRecordingHonorsTheCap) {
  HarnessOptions opt;
  opt.seed = 5;
  opt.cases = 150;
  opt.bugs.drop_reexec_term = true;
  opt.max_recorded_failures = 1;
  const HarnessResult r = run_harness(opt);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.failures.size(), 1u);
  // All failures are still *counted* even though only one was recorded.
  EXPECT_GT(r.checks_fail, 1u);
}

TEST(Harness, ReproBytesAreDeterministic) {
  HarnessOptions opt;
  opt.seed = 5;
  opt.cases = 100;
  opt.bugs.drop_reexec_term = true;
  opt.threads = 1;
  HarnessOptions wide = opt;
  wide.threads = 4;
  const HarnessResult a = run_harness(opt);
  const HarnessResult b = run_harness(wide);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  ASSERT_FALSE(a.failures.empty());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(repro_to_string(a.failures[i]),
              repro_to_string(b.failures[i]));
    EXPECT_EQ(repro_file_name(a.failures[i]),
              repro_file_name(b.failures[i]));
  }
}

}  // namespace
}  // namespace ftmc::check
