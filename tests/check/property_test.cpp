#include <gtest/gtest.h>

#include <set>
#include <string>

#include "ftmc/check/case.hpp"
#include "ftmc/check/property.hpp"
#include "ftmc/mcs/edf_vd.hpp"

namespace ftmc::check {
namespace {

TEST(PropertyRegistry, FamiliesAndNamesAreWellFormed) {
  const auto& props = all_properties();
  ASSERT_GE(props.size(), 16u);
  std::set<std::string> names;
  std::set<std::string> families;
  for (const Property& p : props) {
    EXPECT_NE(p.fn, nullptr) << p.name;
    EXPECT_FALSE(p.doc.empty()) << p.name;
    EXPECT_TRUE(names.insert(std::string(p.name)).second)
        << "duplicate property name: " << p.name;
    families.insert(std::string(p.family));
    EXPECT_TRUE(p.family == kFamilyAnalysisVsSim ||
                p.family == kFamilySufficientVsExact ||
                p.family == kFamilyPfhMetamorphic ||
                p.family == kFamilyTraceReplay ||
                p.family == kFamilyFastpathEquivalence)
        << p.name << " has unknown family " << p.family;
  }
  // All five families are populated.
  EXPECT_EQ(families.size(), 5u);
  EXPECT_EQ(find_property("edf_vd_killing_vs_sim"),
            &props[0]);  // stable order: registry[0] is the EDF-VD oracle
  EXPECT_EQ(find_property("no-such-property"), nullptr);
}

TEST(DrawCase, IsDeterministicAndValid) {
  for (std::uint64_t index : {0ULL, 1ULL, 17ULL, 999ULL}) {
    const Case a = draw_case(123, index);
    const Case b = draw_case(123, index);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.index, index);
    EXPECT_EQ(a.n_hi, b.n_hi);
    EXPECT_EQ(a.ts.size(), b.ts.size());
    a.ts.validate();
    EXPECT_GE(a.n_hi, 2);
    EXPECT_GE(a.n_lo, 1);
    EXPECT_GE(a.n_adapt, 0);
    EXPECT_LT(a.n_adapt, a.n_hi);
    EXPECT_GT(a.degradation_factor, 1.0);
  }
  // Different indices give different sets (not a stuck RNG).
  EXPECT_NE(draw_case(123, 0).seed, draw_case(123, 1).seed);
}

TEST(ConvertUnderTest, CleanMatchesLemma41AndBugDropsOneTerm) {
  Case c = draw_case(7, 3);
  const mcs::McTaskSet clean = convert_under_test(c, {});
  const mcs::McTaskSet truth =
      core::convert_to_mc(c.ts, c.n_hi, c.n_lo, c.n_adapt);
  ASSERT_EQ(clean.size(), truth.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_DOUBLE_EQ(clean[i].wcet_hi, truth[i].wcet_hi);
    EXPECT_DOUBLE_EQ(clean[i].wcet_lo, truth[i].wcet_lo);
  }

  InjectedBugs bugs;
  bugs.drop_reexec_term = true;
  const mcs::McTaskSet buggy = convert_under_test(c, bugs);
  bool any_dropped = false;
  for (std::size_t i = 0; i < buggy.size(); ++i) {
    if (truth[i].crit == CritLevel::HI) {
      // One re-execution budget removed: (n-1) * C instead of n * C.
      EXPECT_LE(buggy[i].wcet_hi, truth[i].wcet_hi);
      any_dropped |= buggy[i].wcet_hi < truth[i].wcet_hi;
    } else {
      EXPECT_DOUBLE_EQ(buggy[i].wcet_hi, truth[i].wcet_hi);
    }
  }
  EXPECT_TRUE(any_dropped);
  buggy.validate();  // the corruption must still be a valid input
}

TEST(BoundedHyperperiod, ExactLcmWhenRepresentable) {
  // 10 ms and 15 ms -> 10000 and 15000 ticks -> lcm 30000 ticks.
  core::FtTaskSet ts({{"a", 10.0, 10.0, 1.0, Dal::B, 1e-4},
                      {"b", 15.0, 15.0, 1.0, Dal::C, 1e-4}},
                     {Dal::B, Dal::C});
  EXPECT_EQ(bounded_hyperperiod(ts, 10'000'000), 30'000);
}

TEST(BoundedHyperperiod, SaturatesAtTheCap) {
  // 997 and 1009 ticks-ish periods: pairwise-coprime milliseconds give a
  // hyperperiod far past the cap.
  core::FtTaskSet ts({{"a", 997.0, 997.0, 1.0, Dal::B, 1e-4},
                      {"b", 1009.0, 1009.0, 1.0, Dal::C, 1e-4},
                      {"c", 1013.0, 1013.0, 1.0, Dal::C, 1e-4}},
                     {Dal::B, Dal::C});
  EXPECT_EQ(bounded_hyperperiod(ts, 10'000'000), 10'000'000);
}

TEST(Properties, CleanCasesNeverFail) {
  // The zero-failures sweep in harness_test covers volume; this pins a
  // handful of specific cases with per-property attribution.
  PropertyContext ctx;
  for (std::uint64_t index = 0; index < 25; ++index) {
    const Case c = draw_case(2026, index);
    for (const Property& p : all_properties()) {
      const Outcome o = p.run(c, ctx);
      EXPECT_NE(o.verdict, Verdict::kFail)
          << p.name << " on case " << index << ": " << o.message;
    }
  }
}

TEST(Properties, InjectedBugIsCaughtBySimOracle) {
  // Crafted overload: two HI tasks with T = 10 ms, C = 2 ms, n = 3.
  // True demand 2 * 3 * 2 / 10 = 1.2 > 1, so the honest analysis rejects;
  // dropping one re-execution term (2 * 2 * 2 / 10 = 0.8) makes the
  // corrupted EDF-VD accept, and the worst-case adversary -- which still
  // runs all three attempts -- must produce a deadline miss.
  Case c;
  c.ts = core::FtTaskSet({{"h1", 10.0, 10.0, 2.0, Dal::B, 1e-4},
                          {"h2", 10.0, 10.0, 2.0, Dal::B, 1e-4},
                          {"l1", 100.0, 100.0, 1.0, Dal::C, 1e-4}},
                         {Dal::B, Dal::C});
  c.n_hi = 3;
  c.n_lo = 1;
  c.n_adapt = 1;

  PropertyContext clean;
  PropertyContext buggy;
  buggy.bugs.drop_reexec_term = true;

  const Property* vs_sim = find_property("edf_vd_killing_vs_sim");
  ASSERT_NE(vs_sim, nullptr);

  // Honest analysis rejects -> the property has nothing to check.
  EXPECT_EQ(vs_sim->run(c, clean).verdict, Verdict::kSkip);

  // Corrupted analysis accepts -> simulation catches the lie.
  const Outcome o = vs_sim->run(c, buggy);
  ASSERT_EQ(o.verdict, Verdict::kFail) << o.message;
  EXPECT_NE(o.message.find("deadline miss"), std::string::npos);
}

}  // namespace
}  // namespace ftmc::check
