#include "ftmc/mcs/utilization_bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ftmc/common/contracts.hpp"
#include "ftmc/mcs/fixed_priority.hpp"

namespace ftmc::mcs {
namespace {

TEST(LiuLayland, KnownValues) {
  EXPECT_DOUBLE_EQ(liu_layland_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(liu_layland_bound(1), 1.0);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-4);
  EXPECT_NEAR(liu_layland_bound(3), 0.7798, 1e-4);
}

TEST(LiuLayland, ConvergesToLn2) {
  EXPECT_NEAR(liu_layland_bound(100000), std::log(2.0), 1e-4);
  // The bound is strictly decreasing in n.
  for (std::size_t n = 1; n < 10; ++n) {
    EXPECT_GT(liu_layland_bound(n), liu_layland_bound(n + 1));
  }
}

TEST(LiuLayland, TestAcceptsAndRejects) {
  EXPECT_TRUE(rm_schedulable_liu_layland({0.3, 0.3}));      // 0.6 <= 0.828
  EXPECT_FALSE(rm_schedulable_liu_layland({0.45, 0.45}));   // 0.9 > 0.828
  EXPECT_TRUE(rm_schedulable_liu_layland({}));
}

TEST(Hyperbolic, DominatesLiuLayland) {
  // Classic example: u = {0.4, 0.4}: LL rejects (0.8 <= 0.828 is fine
  // actually) — use {0.5, 0.3}: sum 0.8 <= 0.828 LL accepts; and
  // {0.6, 0.25}: sum 0.85 > 0.828 LL rejects, hyperbolic accepts
  // (1.6 * 1.25 = 2.0 <= 2).
  EXPECT_FALSE(rm_schedulable_liu_layland({0.6, 0.25}));
  EXPECT_TRUE(rm_schedulable_hyperbolic({0.6, 0.25}));
  // Every LL-accepted vector is hyperbolic-accepted (spot check).
  EXPECT_TRUE(rm_schedulable_hyperbolic({0.3, 0.3}));
}

TEST(Hyperbolic, RejectsOverload) {
  EXPECT_FALSE(rm_schedulable_hyperbolic({0.9, 0.9}));
  EXPECT_FALSE(rm_schedulable_hyperbolic({1.2}));
}

TEST(Hyperbolic, RejectsNegativeUtilization) {
  EXPECT_THROW((void)rm_schedulable_hyperbolic({-0.1}),
               ContractViolation);
  EXPECT_THROW((void)rm_schedulable_liu_layland({-0.1}),
               ContractViolation);
}

TEST(RmWorstCaseTest, UsesOwnLevelBudgets) {
  McTaskSet light({{"h", 100, 100, 5, 20, CritLevel::HI},
                   {"l", 50, 50, 10, 10, CritLevel::LO}});
  // own-level: 0.2 + 0.2: product 1.44 <= 2.
  EXPECT_TRUE(RmWorstCaseTest{}.schedulable(light));

  McTaskSet heavy({{"h", 100, 100, 5, 60, CritLevel::HI},
                   {"l", 50, 50, 30, 30, CritLevel::LO}});
  // 0.6 and 0.6: product 2.56 > 2.
  EXPECT_FALSE(RmWorstCaseTest{}.schedulable(heavy));
}

TEST(RmWorstCaseTest, SufficientForExactRta) {
  // Whatever the hyperbolic bound accepts, the exact RTA must accept too
  // (on implicit-deadline sets where RM == DM).
  for (double u = 0.1; u <= 0.5; u += 0.1) {
    McTaskSet ts({{"a", 10, 10, 10 * u, 10 * u, CritLevel::LO},
                  {"b", 37, 37, 37 * u, 37 * u, CritLevel::LO}});
    if (RmWorstCaseTest{}.schedulable(ts)) {
      EXPECT_TRUE(analyze_rta_worst_case(ts).schedulable) << u;
    }
  }
}

TEST(RmWorstCaseTest, RejectsConstrainedDeadlines) {
  McTaskSet ts({{"t", 10, 5, 1, 1, CritLevel::LO}});
  EXPECT_THROW((void)RmWorstCaseTest{}.schedulable(ts),
               ContractViolation);
}

}  // namespace
}  // namespace ftmc::mcs
