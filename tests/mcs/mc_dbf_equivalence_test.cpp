// Differential unit test pinning the optimized analysis fast paths to
// their retained straight-line references (edf_reference.hpp,
// mc_dbf_reference.hpp): across a randomized sweep of generated task
// sets, every EdfDbfResult field and every McDbfAnalysis field must be
// byte-identical — the optimizations (merge-scan point enumeration,
// phase-1 -> phase-2 LO memoization, workspace-backed views) are pure
// evaluation-strategy changes, never numeric ones. The fuzz harness
// (fastpath-equivalence family) covers volume; this test is the
// deterministic ctest-side pin.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "ftmc/core/conversion.hpp"
#include "ftmc/mcs/edf.hpp"
#include "ftmc/mcs/edf_reference.hpp"
#include "ftmc/mcs/mc_dbf.hpp"
#include "ftmc/mcs/mc_dbf_reference.hpp"
#include "ftmc/taskgen/generator.hpp"

namespace ftmc::mcs {
namespace {

[[nodiscard]] bool bit_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

void expect_same_edf(const std::vector<SporadicTask>& view,
                     const char* what) {
  const EdfDbfResult fast = edf_schedulable(view);
  const EdfDbfResult ref = reference::edf_schedulable(view);
  EXPECT_EQ(fast.schedulable, ref.schedulable) << what;
  EXPECT_TRUE(bit_equal(fast.utilization, ref.utilization)) << what;
  EXPECT_TRUE(bit_equal(fast.violation_at, ref.violation_at))
      << what << ": " << fast.violation_at << " vs " << ref.violation_at;
  EXPECT_TRUE(bit_equal(fast.tested_up_to, ref.tested_up_to))
      << what << ": " << fast.tested_up_to << " vs " << ref.tested_up_to;
}

void expect_same_mc_dbf(const McTaskSet& mc, const McDbfOptions& options,
                        const char* what) {
  const McDbfAnalysis fast = analyze_mc_dbf(mc, options);
  const McDbfAnalysis ref = reference::analyze_mc_dbf(mc, options);
  EXPECT_EQ(fast.schedulable, ref.schedulable) << what;
  EXPECT_EQ(fast.refinement_steps, ref.refinement_steps) << what;
  EXPECT_TRUE(bit_equal(fast.uniform_factor, ref.uniform_factor))
      << what << ": " << fast.uniform_factor << " vs "
      << ref.uniform_factor;
  ASSERT_EQ(fast.virtual_deadlines.size(), ref.virtual_deadlines.size());
  for (std::size_t i = 0; i < fast.virtual_deadlines.size(); ++i) {
    EXPECT_TRUE(bit_equal(fast.virtual_deadlines[i],
                          ref.virtual_deadlines[i]))
        << what << " vd[" << i << "]: " << fast.virtual_deadlines[i]
        << " vs " << ref.virtual_deadlines[i];
  }
}

TEST(FastpathEquivalence, EdfMatchesReferenceAcrossGeneratedViews) {
  taskgen::GeneratorParams params;
  for (int set = 0; set < 60; ++set) {
    params.target_utilization = 0.3 + 0.01 * (set % 70);
    taskgen::Rng rng(1000u + static_cast<std::uint64_t>(set));
    const core::FtTaskSet ts = taskgen::generate_task_set(params, rng);
    const McTaskSet mc = core::convert_to_mc(ts, 3, 2, 2);

    expect_same_edf(as_sporadic_own_level(mc), "own-level");
    for (const CritLevel level : {CritLevel::LO, CritLevel::HI}) {
      std::vector<SporadicTask> view = as_sporadic(mc, level);
      expect_same_edf(view, "level view");
      // Exact halving makes deadlines constrained, forcing the
      // merge-scan (and its first-violation early exit on overloads).
      for (SporadicTask& t : view) t.deadline *= 0.5;
      expect_same_edf(view, "constrained view");
      for (SporadicTask& t : view) t.deadline *= 0.25;
      expect_same_edf(view, "tight view");
    }
  }
}

TEST(FastpathEquivalence, EdfMatchesReferenceOnHandPickedBoundaries) {
  // Duplicate deadline points across tasks (exercises the merge's
  // exact-equality dedup), a zero-wcet task, and a U == 1 set with a
  // constrained deadline (the fallback-horizon branch).
  expect_same_edf({{10.0, 5.0, 2.0}, {20.0, 5.0, 3.0}, {40.0, 25.0, 4.0}},
                  "duplicate points");
  expect_same_edf({{10.0, 5.0, 0.0}, {15.0, 7.5, 6.0}}, "zero wcet");
  expect_same_edf({{10.0, 5.0, 5.0}, {20.0, 20.0, 10.0}}, "U == 1");
  expect_same_edf({{10.0, 12.0, 4.0}, {20.0, 30.0, 8.0}},
                  "all D >= T shortcut");
}

TEST(FastpathEquivalence, McDbfMatchesReferenceAcrossGeneratedSets) {
  taskgen::GeneratorParams params;
  McDbfOptions coarse;
  coarse.grid = 7;
  coarse.max_refinement_steps = 8;
  for (int set = 0; set < 40; ++set) {
    // Push into the region where phases 1 and 2 actually run (phase 0
    // accepts everything at low utilization).
    params.target_utilization = 0.6 + 0.01 * (set % 40);
    taskgen::Rng rng(9000u + static_cast<std::uint64_t>(set));
    const core::FtTaskSet ts = taskgen::generate_task_set(params, rng);
    const McTaskSet mc = core::convert_to_mc(ts, 3, 2, 2);
    if (!mc.all_constrained_deadlines()) continue;
    expect_same_mc_dbf(mc, {}, "default options");
    expect_same_mc_dbf(mc, coarse, "coarse grid");
  }
}

}  // namespace
}  // namespace ftmc::mcs
