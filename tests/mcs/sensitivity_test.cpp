#include "ftmc/mcs/sensitivity.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"
#include "ftmc/mcs/edf.hpp"
#include "ftmc/mcs/edf_vd.hpp"

namespace ftmc::mcs {
namespace {

McTaskSet half_loaded() {
  // Worst-case EDF utilization exactly 0.5 -> max scaling exactly 2.
  return McTaskSet({{"h", 100, 100, 10, 30, CritLevel::HI},
                    {"l", 50, 50, 10, 10, CritLevel::LO}});
}

TEST(Sensitivity, ExactFactorForUtilizationTest) {
  const EdfWorstCaseTest test;
  const ScalingResult r = max_wcet_scaling(half_loaded(), test);
  EXPECT_TRUE(r.schedulable_as_given);
  EXPECT_NEAR(r.max_scaling, 2.0, 1e-3);
}

TEST(Sensitivity, InfeasibleSetGetsSubUnitFactor) {
  // U = 1.5 under worst-case EDF: feasible only when scaled to ~2/3.
  McTaskSet ts({{"h", 10, 10, 5, 10, CritLevel::HI},
                {"l", 10, 10, 5, 5, CritLevel::LO}});
  const EdfWorstCaseTest test;
  const ScalingResult r = max_wcet_scaling(ts, test);
  EXPECT_FALSE(r.schedulable_as_given);
  EXPECT_NEAR(r.max_scaling, 2.0 / 3.0, 1e-3);
}

TEST(Sensitivity, CeilingIsRespected) {
  McTaskSet ts({{"h", 1000, 1000, 1, 1, CritLevel::HI}});
  const EdfWorstCaseTest test;
  const ScalingResult r = max_wcet_scaling(ts, test, /*ceiling=*/4.0);
  EXPECT_DOUBLE_EQ(r.max_scaling, 4.0);  // feasible all the way up
}

TEST(Sensitivity, EdfVdFactorBelowWorstCaseHeadroom) {
  // EDF-VD's U_MC exceeds worst-case utilization whenever the mode switch
  // matters, so its scaling headroom cannot exceed... actually EDF-VD's
  // U_MC is *smaller* than worst case (that is its point), giving MORE
  // headroom. Verify the direction on Table 3.
  McTaskSet ts({{"t1", 60, 60, 10, 15, CritLevel::HI},
                {"t2", 25, 25, 8, 12, CritLevel::HI},
                {"t3", 40, 40, 7, 7, CritLevel::LO},
                {"t4", 90, 90, 6, 6, CritLevel::LO},
                {"t5", 70, 70, 8, 8, CritLevel::LO}});
  const ScalingResult vd = max_wcet_scaling(ts, EdfVdTest{});
  const ScalingResult wc = max_wcet_scaling(ts, EdfWorstCaseTest{});
  EXPECT_TRUE(vd.schedulable_as_given);
  EXPECT_FALSE(wc.schedulable_as_given);  // 1.086 > 1
  EXPECT_GT(vd.max_scaling, wc.max_scaling);
}

TEST(Sensitivity, StructurallyInfeasibleReportsZero) {
  // A single task whose C(LO) exceeds its deadline at every scale above
  // the tolerance... construct C > D at scale 1 and still > D at 1e-4?
  // No: scaling shrinks C. Instead use a test that always rejects.
  class NeverTest final : public SchedulabilityTest {
   public:
    bool schedulable(const McTaskSet&) const override { return false; }
    std::string name() const override { return "never"; }
    AdaptationKind adaptation() const override {
      return AdaptationKind::kNone;
    }
  };
  const ScalingResult r = max_wcet_scaling(half_loaded(), NeverTest{});
  EXPECT_FALSE(r.schedulable_as_given);
  EXPECT_DOUBLE_EQ(r.max_scaling, 0.0);
}

TEST(Sensitivity, RejectsBadArguments) {
  const EdfWorstCaseTest test;
  EXPECT_THROW((void)max_wcet_scaling(half_loaded(), test, 0.0),
               ContractViolation);
  EXPECT_THROW((void)max_wcet_scaling(half_loaded(), test, 8.0, 0.0),
               ContractViolation);
}

// Property: max scaling is antitone in added load.
class SensitivityMonotone : public ::testing::TestWithParam<double> {};

TEST_P(SensitivityMonotone, MoreLoadLessHeadroom) {
  const double extra = GetParam();
  McTaskSet base = half_loaded();
  McTaskSet heavier = half_loaded();
  heavier.add({"pad", 100, 100, extra, extra, CritLevel::LO});
  const EdfWorstCaseTest test;
  EXPECT_LE(max_wcet_scaling(heavier, test).max_scaling,
            max_wcet_scaling(base, test).max_scaling + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ExtraLoad, SensitivityMonotone,
                         ::testing::Values(1.0, 5.0, 10.0, 20.0, 40.0));

TEST(Sensitivity, SingleTaskSetHasExactHeadroom) {
  // One HI task, U_wc = 0.25: the EDF utilization test flips at exactly
  // s = 4 (within the ceiling), independent of any LO-mode bookkeeping.
  McTaskSet ts({{"only", 100, 100, 10, 25, CritLevel::HI}});
  const ScalingResult r = max_wcet_scaling(ts, EdfWorstCaseTest{});
  EXPECT_TRUE(r.schedulable_as_given);
  EXPECT_NEAR(r.max_scaling, 4.0, 1e-3);
}

TEST(Sensitivity, ZeroLoUtilizationSetScalesOnHiTermsOnly) {
  // No LO tasks at all: EDF-VD's U_MC reduces to
  // max(u_hi_lo, u_hi_hi / (1 - x)) and the scaling search must not
  // trip over u_lo_lo = 0 (x = u_hi_lo after scaling).
  McTaskSet ts({{"h1", 100, 100, 5, 20, CritLevel::HI},
                {"h2", 200, 200, 10, 40, CritLevel::HI}});
  const ScalingResult r = max_wcet_scaling(ts, EdfVdTest{});
  EXPECT_TRUE(r.schedulable_as_given);
  EXPECT_GT(r.max_scaling, 1.0);
  // The factor is finite and below the trivial worst-case ceiling
  // 1 / u_hi_hi = 1 / 0.4 = 2.5.
  EXPECT_LE(r.max_scaling, 2.5 + 1e-3);
}

TEST(Sensitivity, NearCriticalSetHasNoHeadroom) {
  // x = u_hi_lo / (1 - u_lo_lo) -> 1: the EDF-VD denominator vanishes,
  // so the accepted region ends essentially at s = 1. The search must
  // converge to ~1 instead of oscillating or reporting the ceiling.
  McTaskSet ts({{"h", 100, 100, 49.9, 50, CritLevel::HI},
                {"l", 100, 100, 50, 50, CritLevel::LO}});
  const ScalingResult r = max_wcet_scaling(ts, EdfVdTest{});
  EXPECT_TRUE(r.schedulable_as_given);
  EXPECT_NEAR(r.max_scaling, 1.0, 2e-3);
}

}  // namespace
}  // namespace ftmc::mcs
