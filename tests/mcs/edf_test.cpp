#include "ftmc/mcs/edf.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"

namespace ftmc::mcs {
namespace {

TEST(DemandBound, SingleTaskSteps) {
  const SporadicTask t{10.0, 10.0, 3.0};
  EXPECT_DOUBLE_EQ(demand_bound(t, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(demand_bound(t, 9.999), 0.0);
  EXPECT_DOUBLE_EQ(demand_bound(t, 10.0), 3.0);   // first deadline
  EXPECT_DOUBLE_EQ(demand_bound(t, 19.999), 3.0);
  EXPECT_DOUBLE_EQ(demand_bound(t, 20.0), 6.0);
  EXPECT_DOUBLE_EQ(demand_bound(t, 100.0), 30.0);
}

TEST(DemandBound, ConstrainedDeadlineShiftsSteps) {
  const SporadicTask t{10.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(demand_bound(t, 3.999), 0.0);
  EXPECT_DOUBLE_EQ(demand_bound(t, 4.0), 2.0);
  EXPECT_DOUBLE_EQ(demand_bound(t, 14.0), 4.0);
}

TEST(DemandBound, ArbitraryDeadlineBeyondPeriod) {
  const SporadicTask t{10.0, 25.0, 4.0};
  EXPECT_DOUBLE_EQ(demand_bound(t, 24.0), 0.0);
  EXPECT_DOUBLE_EQ(demand_bound(t, 25.0), 4.0);
  EXPECT_DOUBLE_EQ(demand_bound(t, 35.0), 8.0);
}

TEST(DemandBound, SetSumsTasks) {
  const std::vector<SporadicTask> tasks = {{10, 10, 3}, {20, 20, 5}};
  EXPECT_DOUBLE_EQ(demand_bound(tasks, 20.0), 6.0 + 5.0);
}

TEST(DemandBound, RejectsMalformedTask) {
  EXPECT_THROW((void)demand_bound(SporadicTask{0, 10, 1}, 5.0),
               ContractViolation);
}

TEST(EdfSchedulable, ImplicitDeadlinesDecidedByUtilization) {
  // U = 0.95 with implicit deadlines: schedulable without DBF points.
  const std::vector<SporadicTask> ok = {{10, 10, 4.75}, {20, 20, 9.5}};
  EXPECT_TRUE(edf_schedulable(ok).schedulable);
  EXPECT_NEAR(edf_schedulable(ok).utilization, 0.95, 1e-12);

  const std::vector<SporadicTask> over = {{10, 10, 6}, {20, 20, 9}};
  EXPECT_FALSE(edf_schedulable(over).schedulable);  // U = 1.05
}

TEST(EdfSchedulable, FullUtilizationImplicitIsSchedulable) {
  const std::vector<SporadicTask> full = {{10, 10, 5}, {20, 20, 10}};
  EXPECT_TRUE(edf_schedulable(full).schedulable);  // U = 1 exactly
}

TEST(EdfSchedulable, ConstrainedDeadlinesCanFailBelowFullUtilization) {
  // Classic: two tasks, U = 0.8, but both want 4 units by t = 5.
  const std::vector<SporadicTask> tight = {{10, 5, 4}, {10, 5, 4}};
  const EdfDbfResult r = edf_schedulable(tight);
  EXPECT_FALSE(r.schedulable);
  EXPECT_DOUBLE_EQ(r.violation_at, 5.0);
}

TEST(EdfSchedulable, ConstrainedDeadlinesPassWhenDemandFits) {
  const std::vector<SporadicTask> fits = {{10, 5, 2}, {10, 5, 2}};
  EXPECT_TRUE(edf_schedulable(fits).schedulable);
}

TEST(EdfSchedulable, ArbitraryDeadlinesUseUtilizationShortcut) {
  // All D >= T: schedulable iff U <= 1 regardless of deadline positions.
  const std::vector<SporadicTask> loose = {{10, 30, 6}, {20, 25, 8}};
  EXPECT_TRUE(edf_schedulable(loose).schedulable);  // U = 1.0
}

TEST(EdfSchedulable, EmptySetIsSchedulable) {
  EXPECT_TRUE(edf_schedulable({}).schedulable);
}

TEST(AsSporadic, ExtractsRequestedLevel) {
  McTaskSet ts({{"h", 100, 100, 10, 30, CritLevel::HI},
                {"l", 50, 50, 5, 5, CritLevel::LO}});
  const auto lo_view = as_sporadic(ts, CritLevel::LO);
  ASSERT_EQ(lo_view.size(), 2u);
  EXPECT_DOUBLE_EQ(lo_view[0].wcet, 10.0);
  EXPECT_DOUBLE_EQ(lo_view[1].wcet, 5.0);
  const auto hi_view = as_sporadic(ts, CritLevel::HI);
  EXPECT_DOUBLE_EQ(hi_view[0].wcet, 30.0);
  EXPECT_DOUBLE_EQ(hi_view[1].wcet, 5.0);
}

TEST(AsSporadic, OwnLevelUsesTaskCriticality) {
  McTaskSet ts({{"h", 100, 100, 10, 30, CritLevel::HI},
                {"l", 50, 50, 5, 5, CritLevel::LO}});
  const auto view = as_sporadic_own_level(ts);
  EXPECT_DOUBLE_EQ(view[0].wcet, 30.0);  // HI task at C(HI)
  EXPECT_DOUBLE_EQ(view[1].wcet, 5.0);   // LO task at C(LO)
}

TEST(EdfWorstCaseTest, Example31IsInfeasibleWithoutAdaptation) {
  // 3x re-executed HI tasks + LO tasks: U = 1.08595 (paper Sec. 3.2).
  McTaskSet ts({{"t1", 60, 60, 15, 15, CritLevel::HI},
                {"t2", 25, 25, 12, 12, CritLevel::HI},
                {"t3", 40, 40, 7, 7, CritLevel::LO},
                {"t4", 90, 90, 6, 6, CritLevel::LO},
                {"t5", 70, 70, 8, 8, CritLevel::LO}});
  const EdfWorstCaseTest test;
  EXPECT_FALSE(test.schedulable(ts));
  EXPECT_EQ(test.adaptation(), AdaptationKind::kNone);
}

TEST(EdfWorstCaseTest, LightSetIsFeasible) {
  McTaskSet ts({{"h", 100, 100, 10, 30, CritLevel::HI},
                {"l", 50, 50, 5, 5, CritLevel::LO}});
  EXPECT_TRUE(EdfWorstCaseTest{}.schedulable(ts));  // 0.3 + 0.1
}

// Property: dbf is superadditive-ish in t — checking it never decreases.
class DbfMonotone : public ::testing::TestWithParam<double> {};

TEST_P(DbfMonotone, NondecreasingInT) {
  const SporadicTask t{GetParam(), GetParam() * 0.7, GetParam() * 0.2};
  double prev = 0.0;
  for (double x = 0.0; x < 20.0 * GetParam(); x += GetParam() / 3.0) {
    const double d = demand_bound(t, x);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, DbfMonotone,
                         ::testing::Values(7.0, 10.0, 13.0, 50.0, 97.0));

}  // namespace
}  // namespace ftmc::mcs
