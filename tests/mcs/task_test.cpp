#include "ftmc/mcs/task.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"

namespace ftmc::mcs {
namespace {

McTask hi_task(Millis t, Millis c_lo, Millis c_hi) {
  return {"hi", t, t, c_lo, c_hi, CritLevel::HI};
}
McTask lo_task(Millis t, Millis c) {
  return {"lo", t, t, c, c, CritLevel::LO};
}

TEST(McTask, WcetSelectsLevel) {
  const McTask t = hi_task(100.0, 10.0, 30.0);
  EXPECT_DOUBLE_EQ(t.wcet(CritLevel::LO), 10.0);
  EXPECT_DOUBLE_EQ(t.wcet(CritLevel::HI), 30.0);
}

TEST(McTask, UtilizationPerLevel) {
  const McTask t = hi_task(100.0, 10.0, 30.0);
  EXPECT_DOUBLE_EQ(t.utilization(CritLevel::LO), 0.1);
  EXPECT_DOUBLE_EQ(t.utilization(CritLevel::HI), 0.3);
}

TEST(McTask, DeadlineClassification) {
  McTask t = hi_task(100.0, 10.0, 30.0);
  EXPECT_TRUE(t.implicit_deadline());
  EXPECT_TRUE(t.constrained_deadline());
  t.deadline = 50.0;
  EXPECT_FALSE(t.implicit_deadline());
  EXPECT_TRUE(t.constrained_deadline());
  t.deadline = 150.0;
  EXPECT_FALSE(t.constrained_deadline());
}

TEST(McTask, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(hi_task(100.0, 10.0, 30.0).validate());
  EXPECT_NO_THROW(lo_task(50.0, 5.0).validate());
}

TEST(McTask, ValidateAcceptsZeroLoWcetForHiTask) {
  // C(LO) == 0 encodes adaptation profile n' = 0 after conversion.
  EXPECT_NO_THROW(hi_task(100.0, 0.0, 30.0).validate());
}

TEST(McTask, ValidateRejectsMalformed) {
  EXPECT_THROW(hi_task(0.0, 10.0, 30.0).validate(), ContractViolation);
  EXPECT_THROW(hi_task(100.0, 30.0, 10.0).validate(), ContractViolation);
  McTask bad = hi_task(100.0, 10.0, 30.0);
  bad.deadline = 0.0;
  EXPECT_THROW(bad.validate(), ContractViolation);
  McTask bad_hi = hi_task(100.0, 10.0, 0.0);
  EXPECT_THROW(bad_hi.validate(), ContractViolation);
}

TEST(McTask, ValidateRejectsLoTaskWithDifferingWcets) {
  McTask t = lo_task(50.0, 5.0);
  t.wcet_hi = 10.0;  // a LO task must not grow after the switch
  EXPECT_THROW(t.validate(), ContractViolation);
}

TEST(McTask, ValidateRejectsLoTaskWithZeroWcet) {
  McTask t{"lo0", 50.0, 50.0, 0.0, 0.0, CritLevel::LO};
  EXPECT_THROW(t.validate(), ContractViolation);
}

TEST(McTaskSet, UtilizationAlgebraMatchesHandComputation) {
  // The converted Example 3.1 set (paper Table 3).
  McTaskSet ts({{"t1", 60, 60, 10, 15, CritLevel::HI},
                {"t2", 25, 25, 8, 12, CritLevel::HI},
                {"t3", 40, 40, 7, 7, CritLevel::LO},
                {"t4", 90, 90, 6, 6, CritLevel::LO},
                {"t5", 70, 70, 8, 8, CritLevel::LO}});
  EXPECT_NEAR(ts.utilization(CritLevel::LO, CritLevel::LO),
              7.0 / 40 + 6.0 / 90 + 8.0 / 70, 1e-12);
  EXPECT_NEAR(ts.utilization(CritLevel::HI, CritLevel::LO),
              10.0 / 60 + 8.0 / 25, 1e-12);
  EXPECT_NEAR(ts.utilization(CritLevel::HI, CritLevel::HI),
              15.0 / 60 + 12.0 / 25, 1e-12);
  EXPECT_NEAR(ts.total_utilization(CritLevel::HI),
              ts.utilization(CritLevel::LO, CritLevel::HI) +
                  ts.utilization(CritLevel::HI, CritLevel::HI),
              1e-12);
}

TEST(McTaskSet, CountsPerLevel) {
  McTaskSet ts({hi_task(100, 10, 30), lo_task(50, 5), lo_task(60, 6)});
  EXPECT_EQ(ts.count(CritLevel::HI), 1u);
  EXPECT_EQ(ts.count(CritLevel::LO), 2u);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_FALSE(ts.empty());
}

TEST(McTaskSet, DeadlinePredicates) {
  McTaskSet implicit({hi_task(100, 10, 30), lo_task(50, 5)});
  EXPECT_TRUE(implicit.all_implicit_deadlines());
  EXPECT_TRUE(implicit.all_constrained_deadlines());

  McTask constrained = hi_task(100, 10, 30);
  constrained.deadline = 40.0;
  McTaskSet mixed({constrained, lo_task(50, 5)});
  EXPECT_FALSE(mixed.all_implicit_deadlines());
  EXPECT_TRUE(mixed.all_constrained_deadlines());
}

TEST(McTaskSet, AddAppends) {
  McTaskSet ts;
  EXPECT_TRUE(ts.empty());
  ts.add(lo_task(50, 5));
  EXPECT_EQ(ts.size(), 1u);
  EXPECT_EQ(ts[0].name, "lo");
}

TEST(McTaskSet, ValidatePropagatesTaskErrors) {
  McTaskSet ts({hi_task(100, 10, 30), hi_task(0.0, 1, 2)});
  EXPECT_THROW(ts.validate(), ContractViolation);
}

}  // namespace
}  // namespace ftmc::mcs
