#include "ftmc/mcs/opa.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ftmc/mcs/fixed_priority.hpp"

namespace ftmc::mcs {
namespace {

TEST(AmcRtbLevelTest, MatchesFullAnalysisOnDmOrder) {
  // If DM accepts the set, then every task is schedulable at its DM level
  // under the per-level test.
  McTaskSet ts({{"h", 10, 10, 2, 5, CritLevel::HI},
                {"l", 20, 20, 6, 6, CritLevel::LO}});
  ASSERT_TRUE(analyze_amc_rtb(ts).schedulable);
  EXPECT_TRUE(amc_rtb_schedulable_at(ts, 1, {0}));  // l below h
  EXPECT_TRUE(amc_rtb_schedulable_at(ts, 0, {}));   // h at the top
}

TEST(AmcRtbLevelTest, DetectsInfeasibleLevel) {
  McTaskSet ts({{"h", 10, 10, 2, 9, CritLevel::HI},
                {"l", 12, 12, 6, 6, CritLevel::LO}});
  // l at the bottom: LO-mode R = 6 + 2 = 8 <= 12, fine; but h at the
  // bottom: R* = 9 + interference from l (frozen at LO count) = 9 + 6 =
  // 15 > 10.
  EXPECT_FALSE(amc_rtb_schedulable_at(ts, 0, {1}));
}

TEST(Opa, FindsAssignmentWhereDmFails) {
  // Classic OPA win: DM orders by deadline, but the HI task needs the
  // higher priority despite its longer deadline, because its C(HI) burst
  // cannot absorb interference.
  McTaskSet ts({{"lo", 10, 10, 3, 3, CritLevel::LO},
                {"hi", 40, 12, 4, 9, CritLevel::HI}});
  // DM: lo (D=10) above hi (D=12): R*_hi = 9 + ceil(R_lo...): LO-mode
  // R_hi = 4+3=7; R*_hi = 9 + ceil(7/10)*3 = 12 <= 12 — actually fits.
  // Make it tighter: raise C(HI) to 10.
  McTaskSet tight({{"lo", 10, 10, 3, 3, CritLevel::LO},
                   {"hi", 40, 12, 4, 10, CritLevel::HI}});
  const bool dm = analyze_amc_rtb(tight).schedulable;
  const auto opa = opa_assign_amc_rtb(tight);
  ASSERT_TRUE(opa.has_value());  // hi on top: R* = 10 <= 12; lo: 3+2*4=11
                                 // ... check: R_lo = 3 + ceil(R/40)*4 = 7.
  if (!dm) {
    // OPA strictly dominated DM on this instance.
    SUCCEED();
  }
  // Verify the returned order is a permutation.
  auto order = *opa;
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1}));
}

TEST(Opa, DominatesDmOrdering) {
  // Whatever DM accepts, OPA must accept (Audsley optimality).
  const std::vector<McTaskSet> sets = {
      McTaskSet({{"h", 10, 10, 2, 5, CritLevel::HI},
                 {"l", 20, 20, 6, 6, CritLevel::LO}}),
      McTaskSet({{"a", 4, 4, 1, 1, CritLevel::LO},
                 {"b", 8, 8, 2, 2, CritLevel::LO},
                 {"c", 16, 16, 3, 3, CritLevel::HI}}),
      McTaskSet({{"l", 10, 10, 3, 3, CritLevel::LO},
                 {"h", 40, 40, 4, 20, CritLevel::HI}}),
  };
  for (const auto& ts : sets) {
    if (analyze_amc_rtb(ts).schedulable) {
      EXPECT_TRUE(opa_assign_amc_rtb(ts).has_value());
    }
  }
}

TEST(Opa, ReturnsNulloptOnHopelessSet) {
  McTaskSet ts({{"h1", 10, 10, 2, 6, CritLevel::HI},
                {"h2", 15, 15, 2, 8, CritLevel::HI}});
  EXPECT_FALSE(opa_assign_amc_rtb(ts).has_value());
}

TEST(Opa, OrderIsPermutationHighestFirst) {
  McTaskSet ts({{"a", 4, 4, 1, 1, CritLevel::LO},
                {"b", 8, 8, 2, 2, CritLevel::LO},
                {"c", 16, 16, 3, 3, CritLevel::HI}});
  const auto order = opa_assign_amc_rtb(ts);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 3u);
  auto sorted = *order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2}));
  // The lowest-priority slot (last entry) must be schedulable with the
  // other two above it.
  std::vector<std::size_t> higher = {order->at(0), order->at(1)};
  EXPECT_TRUE(amc_rtb_schedulable_at(ts, order->back(), higher));
}

TEST(Opa, CustomLevelTestIsHonored) {
  // A level test that only ever accepts task 0 at the bottom forces a
  // unique order (0 lowest) or failure.
  McTaskSet ts({{"a", 10, 10, 1, 1, CritLevel::LO},
                {"b", 10, 10, 1, 1, CritLevel::LO}});
  const auto order = opa_assign(
      ts, [](const McTaskSet&, std::size_t index,
             const std::vector<std::size_t>& higher) {
        return index == 0 || higher.empty();
      });
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->back(), 0u);   // 0 got the lowest priority
  EXPECT_EQ(order->front(), 1u);  // 1 on top
}

TEST(Opa, AdapterDominatesDmAdapter) {
  const AmcRtbOpaTest opa;
  const AmcRtbTest dm;
  EXPECT_EQ(opa.name(), "AMC-rtb+OPA");
  EXPECT_EQ(opa.adaptation(), AdaptationKind::kKilling);
  McTaskSet ts({{"h", 10, 10, 2, 5, CritLevel::HI},
                {"l", 20, 20, 6, 6, CritLevel::LO}});
  if (dm.schedulable(ts)) {
    EXPECT_TRUE(opa.schedulable(ts));
  }
}

}  // namespace
}  // namespace ftmc::mcs
