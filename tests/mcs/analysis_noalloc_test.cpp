// Acceptance test of the analysis fast paths' allocation discipline:
// after a warm-up call (thread_local workspaces size themselves on first
// use), the steady-state analysis entry points — the merge-scan EDF
// demand test, demand_bound, and the PFH bound family — perform zero heap
// allocations, verified with the same global operator-new hook as
// tests/rt/noalloc_test.cpp. analyze_mc_dbf is deliberately not covered:
// its McDbfAnalysis result owns a virtual-deadline vector, so the
// returned value itself must allocate.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <new>
#include <vector>

#include "ftmc/core/analysis.hpp"
#include "ftmc/core/ft_task.hpp"
#include "ftmc/core/profiles.hpp"
#include "ftmc/mcs/edf.hpp"

namespace {

// Global allocation counter bumped by the replaced operator new below.
// Not atomic on purpose: this test is single-threaded, and the counter
// must not itself perturb codegen.
std::size_t g_allocations = 0;

}  // namespace

// GCC pairs the replaced operator new with the std::free in the replaced
// delete and warns about the mismatch; pairing them this way is exactly
// what a minimal counting allocator does.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ftmc {
namespace {

/// Eight tasks with constrained deadlines (D = T/2) so edf_schedulable
/// takes the merge-scan, not the D >= T shortcut.
std::vector<mcs::SporadicTask> constrained_view() {
  std::vector<mcs::SporadicTask> view;
  for (int i = 0; i < 8; ++i) {
    const Millis period = 20.0 + 10.0 * i;
    view.push_back({period, period / 2.0, 1.0 + 0.25 * i});
  }
  return view;
}

core::FtTaskSet mixed_set() {
  return core::FtTaskSet({{"h1", 50.0, 50.0, 6.0, Dal::B, 1e-4},
                          {"h2", 100.0, 100.0, 9.0, Dal::B, 2e-4},
                          {"h3", 200.0, 200.0, 12.0, Dal::B, 5e-5},
                          {"l1", 40.0, 40.0, 4.0, Dal::C, 1e-3},
                          {"l2", 80.0, 80.0, 7.0, Dal::C, 2e-3},
                          {"l3", 160.0, 160.0, 11.0, Dal::C, 5e-4}},
                         {Dal::B, Dal::C});
}

/// Runs `fn` once for warm-up, then asserts the next `rounds` invocations
/// allocate nothing.
template <typename Fn>
void expect_steady_state_noalloc(const char* what, Fn&& fn, int rounds = 16) {
  fn();  // warm-up: thread_local workspaces size themselves here
  const std::size_t baseline = g_allocations;
  for (int i = 0; i < rounds; ++i) fn();
  EXPECT_EQ(g_allocations - baseline, 0u)
      << what << " allocated " << (g_allocations - baseline)
      << " time(s) in steady state";
}

TEST(AnalysisNoAlloc, HookIsActive) {
  const std::size_t before = g_allocations;
  std::vector<int>* v = new std::vector<int>(64);
  delete v;
  // Positive control: without this the steady-state assertions below
  // would be vacuous.
  ASSERT_GT(g_allocations, before) << "operator-new hook is not active";
}

TEST(AnalysisNoAlloc, EdfDemandTestIsSteadyStateAllocationFree) {
  const std::vector<mcs::SporadicTask> view = constrained_view();
  double sink = 0.0;
  expect_steady_state_noalloc("edf_schedulable", [&] {
    const mcs::EdfDbfResult r = mcs::edf_schedulable(view);
    sink += r.tested_up_to + (r.schedulable ? 1.0 : 0.0);
  });
  expect_steady_state_noalloc("demand_bound", [&] {
    sink += mcs::demand_bound(view, 500.0);
  });
  EXPECT_GT(sink, 0.0);
}

TEST(AnalysisNoAlloc, PfhBoundsAreSteadyStateAllocationFree) {
  const core::FtTaskSet ts = mixed_set();
  const core::PerTaskProfile n = core::uniform_profile(ts, 3, 2);
  const core::PerTaskProfile n_adapt = core::uniform_profile(ts, 2, 0);
  core::KillingBoundOptions opt;
  opt.os_hours = 1.0;
  double sink = 0.0;

  expect_steady_state_noalloc("pfh_plain", [&] {
    sink += core::pfh_plain(ts, n, CritLevel::LO) +
            core::pfh_plain(ts, n, CritLevel::HI);
  });
  expect_steady_state_noalloc("survival_no_trigger", [&] {
    sink += core::survival_no_trigger(ts, n_adapt, 3'600'000.0).log();
  });
  expect_steady_state_noalloc("pfh_lo_killing", [&] {
    sink += core::pfh_lo_killing(ts, n, n_adapt, opt);
  });
  expect_steady_state_noalloc("pfh_lo_degradation", [&] {
    sink += core::pfh_lo_degradation(ts, n, n_adapt, 1.0);
  });
  EXPECT_GT(sink, 0.0);
}

TEST(AnalysisNoAlloc, AdaptationDispatchIsSteadyStateAllocationFree) {
  const core::FtTaskSet ts = mixed_set();
  double sink = 0.0;
  for (const mcs::AdaptationKind kind :
       {mcs::AdaptationKind::kNone, mcs::AdaptationKind::kKilling,
        mcs::AdaptationKind::kDegradation}) {
    core::AdaptationModel model;
    model.kind = kind;
    expect_steady_state_noalloc("pfh_lo_under_adaptation", [&] {
      sink += core::pfh_lo_under_adaptation(ts, 3, 2, 2, model);
    });
  }
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace ftmc
