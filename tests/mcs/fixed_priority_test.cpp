#include "ftmc/mcs/fixed_priority.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"

namespace ftmc::mcs {
namespace {

TEST(DeadlineMonotonic, OrdersBySmallestDeadlineFirst) {
  McTaskSet ts({{"a", 100, 100, 5, 5, CritLevel::LO},
                {"b", 20, 20, 2, 2, CritLevel::LO},
                {"c", 50, 50, 3, 3, CritLevel::LO}});
  const auto order = deadline_monotonic_order(ts);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(DeadlineMonotonic, StableOnTies) {
  McTaskSet ts({{"a", 20, 20, 2, 2, CritLevel::LO},
                {"b", 20, 20, 2, 2, CritLevel::LO}});
  const auto order = deadline_monotonic_order(ts);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
}

TEST(ClassicRta, TextbookResponseTimes) {
  // Classic example: C = {1, 2, 3}, T = D = {4, 8, 16} under RM/DM.
  // R1 = 1; R2 = 2 + ceil(R2/4)*1 -> 3;
  // R3 = 3 + ceil(R/4)*1 + ceil(R/8)*2 -> fixed point at 7
  // (demand in [0,7]: 2*1 + 1*2 + 3 = 7).
  McTaskSet ts({{"t1", 4, 4, 1, 1, CritLevel::LO},
                {"t2", 8, 8, 2, 2, CritLevel::LO},
                {"t3", 16, 16, 3, 3, CritLevel::LO}});
  const ResponseTimes r = analyze_rta_worst_case(ts);
  EXPECT_TRUE(r.schedulable);
  EXPECT_DOUBLE_EQ(r.lo[0], 1.0);
  EXPECT_DOUBLE_EQ(r.lo[1], 3.0);
  EXPECT_DOUBLE_EQ(r.lo[2], 7.0);
}

TEST(ClassicRta, DetectsDeadlineMiss) {
  McTaskSet ts({{"t1", 4, 4, 2, 2, CritLevel::LO},
                {"t2", 8, 8, 2, 2, CritLevel::LO},
                {"t3", 16, 16, 5, 5, CritLevel::LO}});
  // t3: 5 + interference; demand in [0,16]: 4*2 + 2*2 + 5 = 17 > 16.
  EXPECT_FALSE(analyze_rta_worst_case(ts).schedulable);
}

TEST(ClassicRta, UsesOwnCriticalityBudgets) {
  // The HI task is budgeted at C(HI) = 4 even though C(LO) = 1.
  McTaskSet ts({{"h", 10, 10, 1, 4, CritLevel::HI},
                {"l", 20, 20, 14, 14, CritLevel::LO}});
  const ResponseTimes r = analyze_rta_worst_case(ts);
  // l: 14 + ceil(R/10)*4 -> R = 14+4=18 -> ceil(18/10)=2 -> 22 > 20.
  EXPECT_FALSE(r.schedulable);
}

TEST(ClassicRta, RejectsUnconstrainedDeadlines) {
  McTaskSet ts({{"t", 10, 15, 1, 1, CritLevel::LO}});
  EXPECT_THROW(analyze_rta_worst_case(ts), ContractViolation);
}

TEST(AmcRtb, LoModePassesHiModeChecked) {
  McTaskSet ts({{"h", 10, 10, 2, 5, CritLevel::HI},
                {"l", 20, 20, 6, 6, CritLevel::LO}});
  const ResponseTimes r = analyze_amc_rtb(ts);
  EXPECT_TRUE(r.schedulable);
  // LO mode: R_h = 2; R_l = 6 + ceil(R/10)*2 -> 8.
  EXPECT_DOUBLE_EQ(r.lo[0], 2.0);
  EXPECT_DOUBLE_EQ(r.lo[1], 8.0);
  // HI task mode-switch bound: C(HI) = 5, no higher-priority tasks.
  EXPECT_DOUBLE_EQ(r.hi[0], 5.0);
}

TEST(AmcRtb, FrozenLoInterferenceAfterSwitch) {
  // LO task has the shorter deadline (higher DM priority). The HI task's
  // R* charges it only ceil(R^LO / T_l) releases, not releases over R*.
  McTaskSet ts({{"l", 10, 10, 3, 3, CritLevel::LO},
                {"h", 40, 40, 4, 20, CritLevel::HI}});
  const ResponseTimes r = analyze_amc_rtb(ts);
  // LO mode: R_l = 3; R_h^LO = 4 + ceil(R/10)*3 -> 4+3=7 -> 7 fits 1
  // release -> R = 7.
  EXPECT_DOUBLE_EQ(r.lo[1], 7.0);
  // R* = 20 + ceil(7/10)*3 = 23 <= 40: schedulable. If LO interference
  // were charged over R* it would be 20 + ceil(23/10)*3 = 29.
  EXPECT_TRUE(r.schedulable);
  EXPECT_DOUBLE_EQ(r.hi[1], 23.0);
}

TEST(AmcRtb, HiModeOverloadDetected) {
  McTaskSet ts({{"h1", 10, 10, 2, 6, CritLevel::HI},
                {"h2", 15, 15, 2, 8, CritLevel::HI}});
  // HI budgets: 6/10 + 8/15 > 1 over the busy window.
  EXPECT_FALSE(analyze_amc_rtb(ts).schedulable);
}

TEST(AmcRtb, LoModeFailureShortCircuits) {
  McTaskSet ts({{"h", 10, 10, 8, 9, CritLevel::HI},
                {"l", 12, 12, 6, 6, CritLevel::LO}});
  const ResponseTimes r = analyze_amc_rtb(ts);
  EXPECT_FALSE(r.schedulable);
}

TEST(AmcRtb, AdapterProperties) {
  const AmcRtbTest test;
  EXPECT_EQ(test.adaptation(), AdaptationKind::kKilling);
  EXPECT_EQ(test.name(), "AMC-rtb");
  EXPECT_FALSE(test.requires_implicit_deadlines());
}

TEST(AmcRtb, DominatesWorstCaseRta) {
  // Any set schedulable with worst-case budgets is schedulable under
  // AMC-rtb (which only ever charges less LO interference after the
  // switch). Spot-check on a family of sets.
  for (double c_hi = 1.0; c_hi <= 4.0; c_hi += 0.5) {
    McTaskSet ts({{"h", 10, 10, 1, c_hi, CritLevel::HI},
                  {"l", 25, 25, 5, 5, CritLevel::LO}});
    if (analyze_rta_worst_case(ts).schedulable) {
      EXPECT_TRUE(analyze_amc_rtb(ts).schedulable) << "c_hi = " << c_hi;
    }
  }
}

}  // namespace
}  // namespace ftmc::mcs
