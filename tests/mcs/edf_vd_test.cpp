#include "ftmc/mcs/edf_vd.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "ftmc/common/contracts.hpp"

namespace ftmc::mcs {
namespace {

/// The converted Example 3.1 task set (paper Table 3): the paper states it
/// is schedulable by EDF-VD.
McTaskSet table3() {
  return McTaskSet({{"t1", 60, 60, 10, 15, CritLevel::HI},
                    {"t2", 25, 25, 8, 12, CritLevel::HI},
                    {"t3", 40, 40, 7, 7, CritLevel::LO},
                    {"t4", 90, 90, 6, 6, CritLevel::LO},
                    {"t5", 70, 70, 8, 8, CritLevel::LO}});
}

TEST(EdfVd, Table3IsSchedulable) {
  const EdfVdAnalysis a = analyze_edf_vd(table3());
  EXPECT_TRUE(a.schedulable);
  // Hand-computed U_MC = max{0.8426.., 0.99898..} (see Eq. (10)).
  EXPECT_NEAR(a.u_mc, 0.99898, 1e-4);
  EXPECT_FALSE(a.plain_edf_suffices);  // 0.73 + 0.3559 + ... > 1
}

TEST(EdfVd, Table3VirtualDeadlineFactor) {
  const EdfVdAnalysis a = analyze_edf_vd(table3());
  // x = U_HI^LO / (1 - U_LO^LO) = 0.486667 / 0.644048.
  EXPECT_NEAR(a.x, 0.4866667 / 0.6440476, 1e-5);
  EXPECT_GT(a.x, 0.0);
  EXPECT_LE(a.x, 1.0);
}

TEST(EdfVd, UtilizationAggregatesExposed) {
  const EdfVdAnalysis a = analyze_edf_vd(table3());
  EXPECT_NEAR(a.u_lo_lo, 0.3559524, 1e-6);
  EXPECT_NEAR(a.u_hi_lo, 0.4866667, 1e-6);
  EXPECT_NEAR(a.u_hi_hi, 0.73, 1e-12);
}

TEST(EdfVd, WithoutModeSwitchExample31IsUnschedulable) {
  // Example 3.1: running every HI task at 3C with no killing gives total
  // utilization 1.08595 > 1 — the motivating observation of Sec. 3.2.
  McTaskSet ts({{"t1", 60, 60, 15, 15, CritLevel::HI},
                {"t2", 25, 25, 12, 12, CritLevel::HI},
                {"t3", 40, 40, 7, 7, CritLevel::LO},
                {"t4", 90, 90, 6, 6, CritLevel::LO},
                {"t5", 70, 70, 8, 8, CritLevel::LO}});
  const EdfVdAnalysis a = analyze_edf_vd(ts);
  EXPECT_NEAR(a.u_hi_hi + a.u_lo_lo, 1.08595, 1e-4);
  EXPECT_FALSE(a.plain_edf_suffices);
  // (EDF-VD with C(LO) = C(HI) has no slack to exploit either.)
  EXPECT_FALSE(a.schedulable);
}

TEST(EdfVd, LightSystemUsesPlainEdf) {
  McTaskSet ts({{"h", 100, 100, 10, 20, CritLevel::HI},
                {"l", 50, 50, 10, 10, CritLevel::LO}});
  const EdfVdAnalysis a = analyze_edf_vd(ts);
  EXPECT_TRUE(a.schedulable);
  EXPECT_TRUE(a.plain_edf_suffices);  // 0.2 + 0.2 <= 1
  EXPECT_DOUBLE_EQ(a.x, 1.0);
}

TEST(EdfVd, OverloadedLoLevelIsUnschedulable) {
  McTaskSet ts({{"h", 100, 100, 10, 20, CritLevel::HI},
                {"l1", 10, 10, 6, 6, CritLevel::LO},
                {"l2", 10, 10, 5, 5, CritLevel::LO}});
  const EdfVdAnalysis a = analyze_edf_vd(ts);  // U_LO^LO = 1.1
  EXPECT_FALSE(a.schedulable);
  EXPECT_EQ(a.u_mc, std::numeric_limits<double>::infinity());
}

TEST(EdfVd, RejectsNonImplicitDeadlines) {
  McTaskSet ts({{"h", 100, 50, 10, 20, CritLevel::HI}});
  EXPECT_THROW((void)analyze_edf_vd(ts), ContractViolation);
}

TEST(EdfVd, UmcClosedFormMatchesAnalysis) {
  const McTaskSet ts = table3();
  const EdfVdAnalysis a = analyze_edf_vd(ts);
  EXPECT_DOUBLE_EQ(edf_vd_umc(a.u_lo_lo, a.u_hi_lo, a.u_hi_hi), a.u_mc);
}

TEST(EdfVd, UmcRejectsNegativeUtilization) {
  EXPECT_THROW((void)edf_vd_umc(-0.1, 0.2, 0.3), ContractViolation);
}

TEST(EdfVd, TestAdapterReportsKilling) {
  const EdfVdTest test;
  EXPECT_EQ(test.adaptation(), AdaptationKind::kKilling);
  EXPECT_TRUE(test.requires_implicit_deadlines());
  EXPECT_EQ(test.name(), "EDF-VD");
  EXPECT_TRUE(test.schedulable(table3()));
}

// Property sweep: U_MC grows monotonically with the LO-mode budget of HI
// tasks — the mechanism behind Fig. 1 ("with increasing adaptation
// profiles, U_MC will continuously increase").
class EdfVdMonotone : public ::testing::TestWithParam<double> {};

TEST_P(EdfVdMonotone, UmcNondecreasingInHiLoBudget) {
  const double u_lo_lo = GetParam();
  double prev = 0.0;
  for (double u_hi_lo = 0.0; u_hi_lo <= 0.5; u_hi_lo += 0.05) {
    const double umc = edf_vd_umc(u_lo_lo, u_hi_lo, 0.6);
    EXPECT_GE(umc, prev) << "u_hi_lo = " << u_hi_lo;
    prev = umc;
  }
}

INSTANTIATE_TEST_SUITE_P(LoBudgets, EdfVdMonotone,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5, 0.6));

}  // namespace
}  // namespace ftmc::mcs
