#include "ftmc/mcs/mc_dbf.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"
#include "ftmc/mcs/edf.hpp"
#include "ftmc/mcs/edf_vd.hpp"

namespace ftmc::mcs {
namespace {

McTaskSet table3() {
  return McTaskSet({{"t1", 60, 60, 10, 15, CritLevel::HI},
                    {"t2", 25, 25, 8, 12, CritLevel::HI},
                    {"t3", 40, 40, 7, 7, CritLevel::LO},
                    {"t4", 90, 90, 6, 6, CritLevel::LO},
                    {"t5", 70, 70, 8, 8, CritLevel::LO}});
}

TEST(McDbf, AcceptsTable3) {
  const McDbfAnalysis a = analyze_mc_dbf(table3());
  EXPECT_TRUE(a.schedulable);
}

TEST(McDbf, ChosenDeadlinesAreValid) {
  const McTaskSet ts = table3();
  const McDbfAnalysis a = analyze_mc_dbf(ts);
  ASSERT_TRUE(a.schedulable);
  ASSERT_EQ(a.virtual_deadlines.size(), ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].crit == CritLevel::HI) {
      EXPECT_GE(a.virtual_deadlines[i], ts[i].wcet_lo);
      EXPECT_LT(a.virtual_deadlines[i], ts[i].deadline);
    } else {
      EXPECT_DOUBLE_EQ(a.virtual_deadlines[i], ts[i].deadline);
    }
  }
}

TEST(McDbf, ChosenDeadlinesActuallyPassBothModes) {
  // Soundness spot check: re-derive both DBF checks from the returned
  // assignment (this is what makes any tuner heuristic safe).
  const McTaskSet ts = table3();
  const McDbfAnalysis a = analyze_mc_dbf(ts);
  ASSERT_TRUE(a.schedulable);

  std::vector<SporadicTask> lo_mode;
  std::vector<SporadicTask> hi_mode;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    lo_mode.push_back(
        {ts[i].period, a.virtual_deadlines[i], ts[i].wcet_lo});
    if (ts[i].crit == CritLevel::HI) {
      hi_mode.push_back({ts[i].period,
                         ts[i].deadline - a.virtual_deadlines[i],
                         ts[i].wcet_hi});
    }
  }
  EXPECT_TRUE(edf_schedulable(lo_mode).schedulable);
  EXPECT_TRUE(edf_schedulable(hi_mode).schedulable);
}

TEST(McDbf, HandlesConstrainedDeadlinesBeyondEdfVd) {
  // EDF-VD's utilization test cannot even be asked (non-implicit); MC-DBF
  // answers. Light load: clearly feasible.
  McTaskSet ts({{"h", 100, 60, 5, 10, CritLevel::HI},
                {"l", 80, 50, 6, 6, CritLevel::LO}});
  EXPECT_THROW((void)analyze_edf_vd(ts), ContractViolation);
  EXPECT_TRUE(analyze_mc_dbf(ts).schedulable);
}

TEST(McDbf, RejectsOverload) {
  McTaskSet ts({{"h1", 10, 10, 4, 8, CritLevel::HI},
                {"h2", 10, 10, 4, 8, CritLevel::HI}});
  EXPECT_FALSE(analyze_mc_dbf(ts).schedulable);  // HI mode: U_HI = 1.6
}

TEST(McDbf, RejectsLoOverloadEvenWithTinyHiDemand) {
  McTaskSet ts({{"h", 100, 100, 1, 2, CritLevel::HI},
                {"l1", 10, 10, 6, 6, CritLevel::LO},
                {"l2", 10, 10, 5, 5, CritLevel::LO}});
  EXPECT_FALSE(analyze_mc_dbf(ts).schedulable);  // U_LO^LO = 1.1
}

TEST(McDbf, ZeroLoBudgetHiTasksSkipLoMode) {
  // n' = 0 conversion: C(LO) = 0 for the HI task; it must not contribute
  // LO-mode demand (and the HI mode gets the full deadline).
  McTaskSet ts({{"h", 10, 10, 0, 9, CritLevel::HI},
                {"l", 10, 10, 9, 9, CritLevel::LO}});
  const McDbfAnalysis a = analyze_mc_dbf(ts);
  EXPECT_TRUE(a.schedulable);
}

TEST(McDbf, RefinementBeatsUniformScaling) {
  // Asymmetric HI pair: a coarse uniform grid fails, per-task refinement
  // succeeds. (Constructed so that the two tasks need very different x.)
  McTaskSet ts({{"fast", 10, 10, 2, 6, CritLevel::HI},
                {"slow", 100, 100, 10, 50, CritLevel::HI},
                {"lo", 20, 20, 7, 7, CritLevel::LO}});
  McDbfOptions coarse;
  coarse.grid = 2;  // x in {1/3, 2/3} only
  const McDbfAnalysis a = analyze_mc_dbf(ts, coarse);
  if (a.schedulable && a.refinement_steps > 0) {
    SUCCEED();  // refinement did the work
  } else {
    // With a fine grid it must also be schedulable — consistency check.
    McDbfOptions fine;
    fine.grid = 64;
    EXPECT_EQ(analyze_mc_dbf(ts, fine).schedulable, a.schedulable);
  }
}

TEST(McDbf, RejectsUnconstrainedDeadlines) {
  McTaskSet ts({{"h", 10, 20, 2, 4, CritLevel::HI}});
  EXPECT_THROW((void)analyze_mc_dbf(ts), ContractViolation);
}

TEST(McDbf, RejectsBadOptions) {
  McDbfOptions bad;
  bad.grid = 0;
  EXPECT_THROW((void)analyze_mc_dbf(table3(), bad), ContractViolation);
  bad = McDbfOptions{};
  bad.max_refinement_steps = -1;
  EXPECT_THROW((void)analyze_mc_dbf(table3(), bad), ContractViolation);
}

TEST(McDbf, AdapterProperties) {
  const McDbfTest test;
  EXPECT_EQ(test.name(), "MC-DBF");
  EXPECT_EQ(test.adaptation(), AdaptationKind::kKilling);
  EXPECT_FALSE(test.requires_implicit_deadlines());
  EXPECT_TRUE(test.schedulable(table3()));
}

// Property sweep: whenever EDF-VD accepts an implicit-deadline set, the
// demand-based test (which dominates utilization arguments at these
// scales) should rarely disagree; at minimum it must accept the plain-EDF
// regime where worst-case reservations fit.
class McDbfVsWorstCase : public ::testing::TestWithParam<double> {};

TEST_P(McDbfVsWorstCase, AcceptsWorstCaseFeasibleSets) {
  const double scale = GetParam();
  McTaskSet ts({{"h", 100, 100, 10 * scale, 30 * scale, CritLevel::HI},
                {"l", 50, 50, 10 * scale, 10 * scale, CritLevel::LO}});
  if (EdfWorstCaseTest{}.schedulable(ts)) {
    EXPECT_TRUE(McDbfTest{}.schedulable(ts)) << "scale = " << scale;
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, McDbfVsWorstCase,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0, 1.5, 1.9));

}  // namespace
}  // namespace ftmc::mcs
