#include "ftmc/mcs/edf_vd_degradation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ftmc/common/contracts.hpp"
#include "ftmc/mcs/edf_vd.hpp"

namespace ftmc::mcs {
namespace {

McTaskSet moderate_set() {
  return McTaskSet({{"h1", 100, 100, 10, 30, CritLevel::HI},
                    {"h2", 50, 50, 5, 15, CritLevel::HI},
                    {"l1", 40, 40, 8, 8, CritLevel::LO},
                    {"l2", 80, 80, 8, 8, CritLevel::LO}});
}

TEST(EdfVdDegradation, HandComputedUmc) {
  // u_lo_lo = 0.3, u_hi_lo = 0.2, u_hi_hi = 0.6, df = 6:
  // LO mode: 0.5; x = 0.2/0.7; HI mode: 0.6/(1 - 0.2857) + 0.3/5.
  const double umc = edf_vd_degradation_umc(0.3, 0.2, 0.6, 6.0);
  const double x = 0.2 / 0.7;
  EXPECT_NEAR(umc, 0.6 / (1.0 - x) + 0.3 / 5.0, 1e-12);
}

TEST(EdfVdDegradation, ModerateSetSchedulableWithLargeDf) {
  const auto a = analyze_edf_vd_degradation(moderate_set(), 6.0);
  EXPECT_TRUE(a.schedulable);
  EXPECT_LE(a.u_mc, 1.0);
  EXPECT_DOUBLE_EQ(a.degradation_factor, 6.0);
}

TEST(EdfVdDegradation, SmallDfRetainsMoreLoLoad) {
  // U_MC decreases monotonically in df: stretching periods more leaves
  // less residual LO load (the U_LO^LO / (df - 1) term).
  const McTaskSet ts = moderate_set();
  double prev = std::numeric_limits<double>::infinity();
  for (const double df : {1.5, 2.0, 3.0, 6.0, 12.0}) {
    const auto a = analyze_edf_vd_degradation(ts, df);
    EXPECT_LE(a.u_mc, prev) << "df = " << df;
    prev = a.u_mc;
  }
}

TEST(EdfVdDegradation, DegenerateLambdaReportsUnschedulable) {
  // x = u_hi_lo / (1 - u_lo_lo) >= 1 makes the Eq. (12) denominator
  // non-positive: must report unschedulable, not a negative utilization.
  const double umc = edf_vd_degradation_umc(0.5, 0.6, 0.7, 6.0);
  EXPECT_EQ(umc, std::numeric_limits<double>::infinity());
}

TEST(EdfVdDegradation, OverloadedLoLevelUnschedulable) {
  const double umc = edf_vd_degradation_umc(1.2, 0.1, 0.2, 6.0);
  EXPECT_EQ(umc, std::numeric_limits<double>::infinity());
}

TEST(EdfVdDegradation, RejectsDfNotAboveOne) {
  EXPECT_THROW((void)edf_vd_degradation_umc(0.3, 0.2, 0.6, 1.0),
               ContractViolation);
  EXPECT_THROW(EdfVdDegradationTest(0.5), ContractViolation);
  EXPECT_THROW((void)analyze_edf_vd_degradation(moderate_set(), 1.0),
               ContractViolation);
}

TEST(EdfVdDegradation, RejectsNonImplicitDeadlines) {
  McTaskSet ts({{"h", 100, 50, 10, 20, CritLevel::HI}});
  EXPECT_THROW((void)analyze_edf_vd_degradation(ts, 6.0), ContractViolation);
}

TEST(EdfVdDegradation, TestAdapterProperties) {
  const EdfVdDegradationTest test(6.0);
  EXPECT_EQ(test.adaptation(), AdaptationKind::kDegradation);
  EXPECT_TRUE(test.requires_implicit_deadlines());
  EXPECT_NE(test.name().find("df=6"), std::string::npos);
  EXPECT_DOUBLE_EQ(test.degradation_factor(), 6.0);
  EXPECT_TRUE(test.schedulable(moderate_set()));
}

TEST(EdfVdDegradation, XFactorIsLambda) {
  // The degradation analysis always reports lambda = U_HI^LO/(1-U_LO^LO)
  // (plain EDF-VD may instead report x = 1 when worst-case EDF suffices).
  const auto deg = analyze_edf_vd_degradation(moderate_set(), 6.0);
  EXPECT_DOUBLE_EQ(deg.x, deg.u_hi_lo / (1.0 - deg.u_lo_lo));
}

// Property sweep: for identical aggregates, degradation's HI-mode term
// dominates killing's (degraded LO tasks still consume capacity), so
// U_MC(degradation) >= U_MC(killing) whenever both are finite.
class DegVsKill : public ::testing::TestWithParam<double> {};

TEST_P(DegVsKill, DegradationNeverEasierThanKilling) {
  const double u_hi_lo = GetParam();
  const double u_lo_lo = 0.3;
  const double u_hi_hi = 0.5;
  const double kill = edf_vd_umc(u_lo_lo, u_hi_lo, u_hi_hi);
  const double degrade =
      edf_vd_degradation_umc(u_lo_lo, u_hi_lo, u_hi_hi, 6.0);
  EXPECT_GE(degrade, kill) << "u_hi_lo = " << u_hi_lo;
}

INSTANTIATE_TEST_SUITE_P(HiLoBudgets, DegVsKill,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.4, 0.5));

TEST(EdfVdDegradation, ZeroLoUtilizationDropsTheResidualTerm) {
  // u_lo_lo = 0: nothing to degrade, so Eq. (12) must reduce to
  // max(u_hi_lo, u_hi_hi / (1 - x)) with no U_LO^LO / (df - 1) residue.
  const double x = 0.2;  // u_hi_lo / (1 - 0)
  EXPECT_NEAR(edf_vd_degradation_umc(0.0, 0.2, 0.6, 6.0),
              std::max(0.2, 0.6 / (1.0 - x)), 1e-12);

  // A HI-only task set exercises the same path end to end.
  McTaskSet ts({{"h1", 100, 100, 10, 30, CritLevel::HI},
                {"h2", 50, 50, 5, 15, CritLevel::HI}});
  const auto a = analyze_edf_vd_degradation(ts, 6.0);
  EXPECT_DOUBLE_EQ(a.u_lo_lo, 0.0);
  EXPECT_TRUE(a.schedulable);
  EXPECT_NEAR(a.u_mc, a.u_hi_hi / (1.0 - a.x), 1e-12);
}

TEST(EdfVdDegradation, UmcDivergesAsXApproachesOne) {
  // x = u_hi_lo / (1 - u_lo_lo) -> 1-: the HI-mode term must diverge
  // monotonically (and flip to the infinity sentinel at x >= 1) rather
  // than go negative past the pole.
  double prev = 0.0;
  for (const double eps : {1e-1, 1e-2, 1e-4, 1e-8}) {
    const double u_hi_lo = (1.0 - eps) * (1.0 - 0.3);  // x = 1 - eps
    const double umc = edf_vd_degradation_umc(0.3, u_hi_lo, 0.1, 6.0);
    EXPECT_GT(umc, prev) << "eps = " << eps;
    EXPECT_TRUE(std::isfinite(umc)) << "eps = " << eps;
    prev = umc;
  }
  EXPECT_EQ(edf_vd_degradation_umc(0.3, 0.7, 0.1, 6.0),
            std::numeric_limits<double>::infinity());
}

TEST(EdfVdDegradation, SingleHiTaskSet) {
  // One HI task: u_lo_lo = 0, x = u_hi_lo, and the verdict is decided by
  // C(HI)/T alone. 30/100 LO budget, 80/100 HI budget: x = 0.3 and
  // 0.8 / 0.7 > 1 -> unschedulable; with C(HI) = 60 it fits (6/7 < 1).
  McTaskSet heavy({{"h", 100, 100, 30, 80, CritLevel::HI}});
  const auto a = analyze_edf_vd_degradation(heavy, 2.0);
  EXPECT_FALSE(a.schedulable);
  EXPECT_NEAR(a.u_mc, 0.8 / 0.7, 1e-12);

  McTaskSet light({{"h", 100, 100, 30, 60, CritLevel::HI}});
  EXPECT_TRUE(analyze_edf_vd_degradation(light, 2.0).schedulable);
}

TEST(EdfVdDegradation, SingleLoTaskSet) {
  // One LO task: x = 0 and the HI-mode residue u_lo_lo / (df - 1)
  // governs. u_lo_lo = 0.9, df = 1.5 -> residue 1.8 > 1: degrading too
  // gently leaves the processor oversubscribed after the switch.
  McTaskSet ts({{"l", 100, 100, 90, 90, CritLevel::LO}});
  const auto gentle = analyze_edf_vd_degradation(ts, 1.5);
  EXPECT_FALSE(gentle.schedulable);
  EXPECT_NEAR(gentle.u_mc, 0.9 / 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(gentle.x, 0.0);

  // df = 6: residue 0.18, LO mode 0.9 -> schedulable.
  const auto strong = analyze_edf_vd_degradation(ts, 6.0);
  EXPECT_TRUE(strong.schedulable);
  EXPECT_NEAR(strong.u_mc, 0.9, 1e-12);
}

}  // namespace
}  // namespace ftmc::mcs
