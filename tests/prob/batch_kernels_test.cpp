// Golden-value and bit-identity tests of the batched SoA kernels in
// ftmc/prob/batch.hpp.
//
// Two layers of pinning:
//  1. bit-identity: each batch kernel must equal its scalar safe_math
//     counterpart element for element, bit for bit — this is the contract
//     the byte-identical campaign journals rest on;
//  2. accuracy: the scalar primitives themselves are checked against a
//     long-double reference evaluation within a small ULP budget, across
//     denormal, underflow and branch-boundary inputs. Golden expectations
//     are computed in 80-bit extended precision and rounded once.
#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "ftmc/prob/batch.hpp"
#include "ftmc/prob/safe_math.hpp"

namespace ftmc::prob {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

[[nodiscard]] std::uint64_t bits_of(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(x));
  return u;
}

[[nodiscard]] bool bit_equal(double a, double b) {
  return bits_of(a) == bits_of(b);
}

/// ULP distance between two finite doubles of the same sign (monotone
/// mapping of the IEEE-754 ordering onto integers).
[[nodiscard]] std::uint64_t ulp_distance(double a, double b) {
  if (bit_equal(a, b)) return 0;
  if (std::isinf(a) || std::isinf(b) || std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  auto ordered = [](double x) -> std::int64_t {
    std::int64_t i = 0;
    std::memcpy(&i, &x, sizeof(x));
    return i < 0 ? std::numeric_limits<std::int64_t>::min() - i : i;
  };
  const std::int64_t ia = ordered(a);
  const std::int64_t ib = ordered(b);
  return ia > ib ? static_cast<std::uint64_t>(ia - ib)
                 : static_cast<std::uint64_t>(ib - ia);
}

// ---------------------------------------------------------------------
// Long-double golden references.
// ---------------------------------------------------------------------

[[nodiscard]] double golden_log1mexp(double x) {
  if (x == 0.0) return -kInf;
  // The golden needs the same Maechler split as the implementation, just
  // in 80-bit: below -ln2, logl(-expm1l(x)) cancels catastrophically
  // (1 - e^x rounds to 1 once e^x < 2^-64) while log1pl(-expl(x)) is
  // exact to ~0.5 ulp; above -ln2 the roles flip.
  const long double xl = static_cast<long double>(x);
  const long double r = xl > -0.693147180559945309417L
                            ? logl(-expm1l(xl))
                            : log1pl(-expl(xl));
  return static_cast<double>(r);
}

[[nodiscard]] double golden_log_pow(double p, long long n) {
  if (n == 0) return 0.0;
  if (p == 0.0) return -kInf;
  return static_cast<double>(static_cast<long double>(n) *
                             logl(static_cast<long double>(p)));
}

[[nodiscard]] double golden_log_survival(double p, double r) {
  if (p >= 1.0) return r == 0.0 ? 0.0 : -kInf;
  return static_cast<double>(static_cast<long double>(r) *
                             log1pl(-static_cast<long double>(p)));
}

[[nodiscard]] double golden_complement_from_log(double log_s) {
  return static_cast<double>(-expm1l(static_cast<long double>(log_s)));
}

// The scalar primitives apply one or two correctly-rounded-ish libm calls
// plus a multiply; against an 80-bit reference the end-to-end error stays
// within a couple of ULP.
constexpr std::uint64_t kUlpBudget = 2;

TEST(BatchKernels, Log1mexpMatchesGoldenAcrossBoundaries) {
  // Branch split at -ln2, near-zero cancellation, exp-underflow tail,
  // denormal magnitudes.
  const std::vector<double> inputs = {
      0.0,           -4.9406564584124654e-324,  // smallest denormal
      -1e-320,       -1e-300,
      -1e-17,        -1e-9,
      -0.5,          -0.6931471805599453,  // the Maechler split itself
      -0.6931471805599454, -0.69,
      -1.0,          -36.7368005696771,  // exp() ~ DBL_EPSILON scale
      -708.0,        -745.1332191019412,  // exp() underflows to denormal
      -745.2,        -1000.0};
  std::vector<double> out(inputs.size());
  log1mexp_batch(inputs.data(), out.data(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_TRUE(bit_equal(out[i], log1mexp(inputs[i])))
        << "batch diverged from scalar at x=" << inputs[i];
    const double golden = golden_log1mexp(inputs[i]);
    if (std::isinf(golden)) {
      EXPECT_EQ(out[i], golden) << "x=" << inputs[i];
    } else {
      EXPECT_LE(ulp_distance(out[i], golden), kUlpBudget)
          << "x=" << inputs[i] << ": got " << out[i] << ", golden "
          << golden;
    }
  }
}

TEST(BatchKernels, LogPowMatchesGoldenAcrossBoundaries) {
  const std::vector<double> ps = {0.0,
                                  4.9406564584124654e-324,  // denormal prob
                                  DBL_MIN,
                                  1e-300,
                                  1e-15,
                                  1e-5,
                                  0.5,
                                  1.0 - 1e-16,
                                  1.0};
  for (const long long n : {0LL, 1LL, 3LL, 9LL, 1'000'000LL}) {
    std::vector<double> out(ps.size());
    log_pow_batch(ps.data(), n, out.data(), ps.size());
    for (std::size_t i = 0; i < ps.size(); ++i) {
      EXPECT_TRUE(bit_equal(out[i], log_pow(ps[i], n)))
          << "batch diverged from scalar at p=" << ps[i] << ", n=" << n;
      const double golden = golden_log_pow(ps[i], n);
      if (std::isinf(golden) || golden == 0.0) {
        EXPECT_EQ(out[i], golden) << "p=" << ps[i] << ", n=" << n;
      } else {
        EXPECT_LE(ulp_distance(out[i], golden), kUlpBudget)
            << "p=" << ps[i] << ", n=" << n;
      }
    }
  }

  // Per-element exponent overload agrees with the scalar-n overload.
  const std::vector<long long> ns = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_EQ(ns.size(), ps.size());
  std::vector<double> out(ps.size());
  log_pow_batch(ps.data(), ns.data(), out.data(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_TRUE(bit_equal(out[i], log_pow(ps[i], ns[i]))) << i;
  }
}

TEST(BatchKernels, LogSurvivalMatchesGoldenAcrossBoundaries) {
  // (p, r) pairs spanning p -> 0 underflow, p == 1 poles, huge counts.
  const std::vector<double> ps = {0.0,    4.9406564584124654e-324,
                                  1e-300, 1e-16,
                                  1e-5,   0.5,
                                  1.0,    1.0};
  const std::vector<double> rs = {0.0, 1.0, 1e6, 3.6e6, 1e15, 7.0, 0.0, 2.0};
  ASSERT_EQ(ps.size(), rs.size());
  std::vector<double> out(ps.size());
  log_survival_batch(ps.data(), rs.data(), out.data(), ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    EXPECT_TRUE(bit_equal(out[i], log_survival(ps[i], rs[i])))
        << "batch diverged from scalar at p=" << ps[i] << ", r=" << rs[i];
    const double golden = golden_log_survival(ps[i], rs[i]);
    if (std::isinf(golden) || golden == 0.0) {
      EXPECT_EQ(out[i], golden) << "p=" << ps[i] << ", r=" << rs[i];
    } else {
      EXPECT_LE(ulp_distance(out[i], golden), kUlpBudget)
          << "p=" << ps[i] << ", r=" << rs[i];
    }
  }
}

TEST(BatchKernels, ComplementFromLogMatchesGoldenAcrossBoundaries) {
  const std::vector<double> logs = {0.0,   -4.9406564584124654e-324,
                                    -1e-320, -1e-17,
                                    -1e-9, -0.5,
                                    -36.0, -708.0,
                                    -745.2, -1e6};
  std::vector<double> out(logs.size());
  complement_from_log_batch(logs.data(), out.data(), logs.size());
  for (std::size_t i = 0; i < logs.size(); ++i) {
    EXPECT_TRUE(bit_equal(out[i], complement_from_log(logs[i])))
        << "batch diverged from scalar at log_s=" << logs[i];
    const double golden = golden_complement_from_log(logs[i]);
    if (golden == 0.0 || golden == 1.0) {
      EXPECT_EQ(out[i], golden) << "log_s=" << logs[i];
    } else {
      EXPECT_LE(ulp_distance(out[i], golden), kUlpBudget)
          << "log_s=" << logs[i];
    }
  }
}

TEST(BatchKernels, SurvivalAccumulateIsBitIdenticalToScalarLoop) {
  // Evaluation points straddling every branch: far below busy (r clamped
  // to 0), exactly busy (r = 1), just under/over round boundaries, and
  // deep into the horizon. Values chosen exactly representable so the
  // boundary cases land exactly on the boundary.
  const std::vector<double> alpha = {-100.0, 0.0,    59.9999999999999,
                                     60.0,   60.25,  119.75,
                                     120.0,  1e6,    3.6e6,
                                     3.6e6 + 0.5};
  struct Term {
    double busy;
    double period;
    double log_per_round;
  };
  const std::vector<Term> terms = {
      {60.0, 100.0, -1.0000000000000001e-05},
      {0.0, 250.0, -2.5e-09},
      {36.0, 40.0, -0.00012345},
  };

  std::vector<double> batch(alpha.size(), 0.0);
  for (const Term& term : terms) {
    survival_accumulate_batch(batch.data(), alpha.data(), alpha.size(),
                              term.busy, term.period, term.log_per_round);
  }

  // The scalar shape: per point, sum the per-term contributions in term
  // order (this is the loop-interchanged order the kernel must reproduce).
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    double log_r = 0.0;
    for (const Term& term : terms) {
      const double r = std::max(
          std::floor((alpha[i] - term.busy) / term.period) + 1.0, 0.0);
      if (r <= 0.0) continue;
      log_r += r * term.log_per_round;
    }
    EXPECT_TRUE(bit_equal(batch[i], log_r))
        << "alpha=" << alpha[i] << ": batch " << batch[i] << " vs scalar "
        << log_r;
  }

  // Spot-check the clamp: a point before every term's first round stays
  // exactly 0 (never touched, not "+= 0").
  EXPECT_TRUE(bit_equal(batch[0], 0.0));
}

}  // namespace
}  // namespace ftmc::prob
