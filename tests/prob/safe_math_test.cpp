#include "ftmc/prob/safe_math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ftmc/common/contracts.hpp"

namespace ftmc::prob {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Log1mExp, BoundaryValues) {
  EXPECT_EQ(log1mexp(0.0), -kInf);                 // 1 - e^0 = 0
  EXPECT_NEAR(log1mexp(-kInf), 0.0, 1e-15);        // 1 - 0 = 1
}

TEST(Log1mExp, MatchesNaiveForModerateArguments) {
  for (const double x : {-0.1, -0.5, -1.0, -2.0, -5.0, -20.0}) {
    EXPECT_NEAR(log1mexp(x), std::log(1.0 - std::exp(x)), 1e-12)
        << "x = " << x;
  }
}

TEST(Log1mExp, AccurateNearZeroWhereNaiveCancels) {
  // x = -1e-12: 1 - e^x ~ 1e-12; the naive formula loses ~4 digits, the
  // stable one keeps full relative precision.
  const double x = -1e-12;
  EXPECT_NEAR(log1mexp(x), std::log(1e-12), 1e-6);
}

TEST(Log1mExp, AccurateForVeryNegative) {
  // 1 - e^-50 ~ 1 - 2e-22: log ~ -2e-22, representable only via log1p.
  const double x = -50.0;
  EXPECT_NEAR(log1mexp(x), -std::exp(-50.0), 1e-30);
}

TEST(Log1mExp, RejectsPositiveArgument) {
  EXPECT_THROW(log1mexp(0.5), ContractViolation);
}

TEST(LogPow, BasicIdentities) {
  EXPECT_EQ(log_pow(0.5, 0), 0.0);   // p^0 = 1
  EXPECT_EQ(log_pow(0.0, 0), 0.0);   // 0^0 = 1 by convention here
  EXPECT_EQ(log_pow(0.0, 3), -kInf);
  EXPECT_EQ(log_pow(1.0, 100), 0.0);
  EXPECT_NEAR(log_pow(0.1, 3), 3.0 * std::log(0.1), 1e-12);
}

TEST(LogPow, HandlesTinyProbabilitiesWithoutUnderflow) {
  // f = 1e-5, n = 9 -> f^n = 1e-45: fine in log domain.
  EXPECT_NEAR(log_pow(1e-5, 9), -45.0 * std::log(10.0), 1e-9);
}

TEST(LogPow, RejectsBadArguments) {
  EXPECT_THROW(log_pow(1.5, 2), ContractViolation);
  EXPECT_THROW(log_pow(-0.1, 2), ContractViolation);
  EXPECT_THROW(log_pow(0.5, -1), ContractViolation);
}

TEST(PowProb, MatchesStdPow) {
  EXPECT_NEAR(pow_prob(1e-5, 3), 1e-15, 1e-27);
  EXPECT_NEAR(pow_prob(0.25, 2), 0.0625, 1e-15);
  EXPECT_EQ(pow_prob(0.7, 0), 1.0);
  EXPECT_EQ(pow_prob(0.0, 5), 0.0);
}

TEST(LogSurvival, BasicValues) {
  EXPECT_EQ(log_survival(0.0, 1e9), 0.0);  // nothing ever fails
  EXPECT_EQ(log_survival(1.0, 1.0), -kInf);
  EXPECT_EQ(log_survival(1.0, 0.0), 0.0);  // zero trials always survive
  EXPECT_NEAR(log_survival(0.5, 2.0), 2.0 * std::log(0.5), 1e-12);
}

TEST(LogSurvival, TinyProbabilityHugeCount) {
  // (1 - 1e-10)^(1e6): log = 1e6 * log1p(-1e-10) ~ -1e-4 with full
  // relative accuracy (naive (1-p) would round to 1).
  const double log_s = log_survival(1e-10, 1e6);
  EXPECT_NEAR(log_s, -1e-4, 1e-12);
}

TEST(ComplementFromLog, PreservesSmallComplements) {
  // R = exp(-1e-8) -> 1 - R = 1e-8 - 5e-17 + O(1e-25), with full relative
  // accuracy (naive 1.0 - std::exp(-1e-8) would keep only ~8 digits).
  EXPECT_NEAR(complement_from_log(-1e-8), 1e-8 - 5e-17, 1e-22);
  EXPECT_NEAR(complement_from_log(0.0), 0.0, 0.0);
  EXPECT_NEAR(complement_from_log(-kInf), 1.0, 0.0);
}

TEST(UnionBoundPair, ExactForIndependentEvents) {
  EXPECT_DOUBLE_EQ(union_bound_pair(0.5, 0.5), 0.75);
  EXPECT_DOUBLE_EQ(union_bound_pair(0.0, 0.3), 0.3);
  EXPECT_DOUBLE_EQ(union_bound_pair(1.0, 0.3), 1.0);
}

TEST(UnionBoundPair, NoCancellationForTinyInputs) {
  const double v = union_bound_pair(1e-18, 1e-18);
  EXPECT_NEAR(v, 2e-18, 1e-30);
}

// Property sweep: log1mexp and complement_from_log are exact inverses of
// each other across 30 orders of magnitude.
class ProbRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(ProbRoundTrip, ComplementOfComplementIsIdentity) {
  const double p = GetParam();
  const double log_1mp = log_survival(p, 1.0);   // log(1-p)
  const double back = complement_from_log(log_1mp);  // 1-(1-p) = p
  EXPECT_NEAR(back, p, p * 1e-12 + 1e-300);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, ProbRoundTrip,
                         ::testing::Values(1e-30, 1e-20, 1e-15, 1e-10, 1e-5,
                                           1e-3, 0.1, 0.5, 0.9, 0.999));

}  // namespace
}  // namespace ftmc::prob
