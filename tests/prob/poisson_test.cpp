#include <gtest/gtest.h>

#include <cmath>

#include "ftmc/prob/poisson.hpp"

namespace ftmc::prob {
namespace {

TEST(GammaFunctions, PAndQAreComplements) {
  for (const double a : {0.5, 1.0, 2.0, 7.5, 40.0}) {
    for (const double x : {0.1, 1.0, 5.0, 20.0, 80.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(GammaFunctions, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  EXPECT_NEAR(gamma_p(1.0, 2.0), 1.0 - std::exp(-2.0), 1e-12);
  // P(2, x) = 1 - (1 + x) exp(-x).
  EXPECT_NEAR(gamma_p(2.0, 3.0), 1.0 - 4.0 * std::exp(-3.0), 1e-12);
  EXPECT_NEAR(gamma_p(0.5, 1e-12), 0.0, 1e-5);
  EXPECT_NEAR(gamma_q(3.0, 50.0), 0.0, 1e-12);
}

TEST(PoissonInterval, ZeroCountUpperIsGarwood) {
  // k = 0: lower must be exactly 0, upper solves exp(-mu) = 0.025,
  // i.e. mu = -ln(0.025) = 3.68888.
  const PoissonInterval ci = poisson_interval(0, 0.95);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_NEAR(ci.upper, 3.68888, 1e-4);
  EXPECT_GT(ci.upper, 0.0);  // the old +-0 band was vacuous here
}

TEST(PoissonInterval, TextbookValues) {
  // Garwood exact 95% intervals (e.g. Ulm 1990 tables).
  const PoissonInterval one = poisson_interval(1, 0.95);
  EXPECT_NEAR(one.lower, 0.0253, 1e-3);
  EXPECT_NEAR(one.upper, 5.5716, 1e-3);

  const PoissonInterval ten = poisson_interval(10, 0.95);
  EXPECT_NEAR(ten.lower, 4.7954, 1e-3);
  EXPECT_NEAR(ten.upper, 18.3904, 1e-3);
}

TEST(PoissonInterval, ContainsTheObservationAndIsMonotone) {
  double prev_lower = -1.0;
  double prev_upper = -1.0;
  for (const std::uint64_t k : {0ULL, 1ULL, 2ULL, 5ULL, 20ULL, 100ULL}) {
    const PoissonInterval ci = poisson_interval(k, 0.95);
    EXPECT_LE(ci.lower, static_cast<double>(k));
    EXPECT_GE(ci.upper, static_cast<double>(k));
    EXPECT_GT(ci.lower, prev_lower);
    EXPECT_GT(ci.upper, prev_upper);
    prev_lower = ci.lower;
    prev_upper = ci.upper;
  }
}

TEST(PoissonInterval, WiderConfidenceWidensTheInterval) {
  const PoissonInterval p95 = poisson_interval(5, 0.95);
  const PoissonInterval p99 = poisson_interval(5, 0.99);
  EXPECT_LT(p99.lower, p95.lower);
  EXPECT_GT(p99.upper, p95.upper);
}

}  // namespace
}  // namespace ftmc::prob
