#include "ftmc/prob/logprob.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ftmc/common/contracts.hpp"

namespace ftmc::prob {
namespace {

TEST(LogProb, DefaultIsOne) {
  EXPECT_DOUBLE_EQ(LogProb{}.linear(), 1.0);
  EXPECT_EQ(LogProb{}.log(), 0.0);
}

TEST(LogProb, FromLinearRoundTrip) {
  for (const double p : {1.0, 0.5, 0.1, 1e-5, 1e-100}) {
    EXPECT_NEAR(LogProb::from_linear(p).linear(), p, p * 1e-12);
  }
  EXPECT_EQ(LogProb::from_linear(0.0).linear(), 0.0);
}

TEST(LogProb, FromLinearRejectsOutOfRange) {
  EXPECT_THROW(LogProb::from_linear(-0.1), ContractViolation);
  EXPECT_THROW(LogProb::from_linear(1.1), ContractViolation);
}

TEST(LogProb, FromLogRejectsPositive) {
  EXPECT_THROW(LogProb::from_log(0.5), ContractViolation);
}

TEST(LogProb, MultiplicationAddsLogs) {
  const auto a = LogProb::from_linear(1e-8);
  const auto b = LogProb::from_linear(1e-9);
  EXPECT_NEAR((a * b).log(), std::log(1e-17), 1e-9);
}

TEST(LogProb, MultiplicationBelowLinearUnderflow) {
  // 1e-200 * 1e-200 underflows doubles; stays exact in log domain.
  const auto a = LogProb::from_linear(1e-200);
  const auto product = a * a;
  EXPECT_NEAR(product.log10(), -400.0, 1e-9);
  EXPECT_EQ(product.linear(), 0.0);  // expected underflow in linear view
}

TEST(LogProb, PowScalesLog) {
  const auto p = LogProb::from_linear(0.9);
  EXPECT_NEAR(p.pow(1e6).log(), 1e6 * std::log(0.9), 1e-6);
  EXPECT_EQ(p.pow(0.0).log(), 0.0);
}

TEST(LogProb, PowRejectsNegativeExponent) {
  EXPECT_THROW((void)LogProb::from_linear(0.5).pow(-1.0), ContractViolation);
}

TEST(LogProb, ComplementEndpoints) {
  EXPECT_DOUBLE_EQ(LogProb::one().complement().linear(), 0.0);
  EXPECT_DOUBLE_EQ(LogProb::zero().complement().linear(), 1.0);
}

TEST(LogProb, ComplementPreservesTinyResiduals) {
  // p = (1 - 1e-10)^(1e6) => 1 - p ~ 1e-4; naive doubles would be fine
  // here, but at (1 - 1e-15)^(1e3) => 1 - p ~ 1e-12 the naive path loses
  // most digits while LogProb keeps ~15.
  const auto survival_p = survival(1e-15, 1e3);
  EXPECT_NEAR(survival_p.complement().linear(), 1e-12, 1e-24);
}

TEST(LogProb, ComplementInvolutionModuloRounding) {
  const auto p = LogProb::from_linear(0.3);
  EXPECT_NEAR(p.complement().complement().linear(), 0.3, 1e-12);
}

TEST(LogProb, OrderingMatchesLinearOrdering) {
  const auto small = LogProb::from_linear(1e-10);
  const auto large = LogProb::from_linear(1e-2);
  EXPECT_LT(small, large);
  EXPECT_GT(large, small);
  EXPECT_EQ(small, small);
}

TEST(LogProb, SurvivalHelper) {
  // 10 rounds at f = 0.1: (0.9)^10.
  EXPECT_NEAR(survival(0.1, 10.0).linear(), std::pow(0.9, 10.0), 1e-12);
}

TEST(LogProb, Log10MatchesLinear) {
  EXPECT_NEAR(LogProb::from_linear(1e-7).log10(), -7.0, 1e-9);
}

TEST(LogProb, StreamPrintsLinearWhenRepresentable) {
  std::ostringstream os;
  os << LogProb::from_linear(0.25);
  EXPECT_EQ(os.str(), "0.25");
}

TEST(LogProb, StreamFallsBackToPowerOfTenBelowUnderflow) {
  std::ostringstream os;
  os << LogProb::from_log(-1000.0);  // e^-1000 underflows linear doubles
  EXPECT_NE(os.str().find("10^"), std::string::npos);
}

}  // namespace
}  // namespace ftmc::prob
