#include "ftmc/io/taskset_io.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <sstream>
#include <string>

#include "ftmc/io/json.hpp"

namespace ftmc::io {
namespace {

/// Switches LC_NUMERIC to a decimal-comma locale for one scope;
/// GTEST_SKIP-compatible: locale_name() is empty when the host has no
/// such locale installed (CI installs de_DE.UTF-8 explicitly).
class DecimalCommaLocale {
 public:
  DecimalCommaLocale() {
    const char* previous = std::setlocale(LC_NUMERIC, nullptr);
    previous_ = previous != nullptr ? previous : "C";
    for (const char* candidate :
         {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8",
          "fr_FR.utf8", "fr_FR"}) {
      if (std::setlocale(LC_NUMERIC, candidate) != nullptr) {
        name_ = candidate;
        return;
      }
    }
  }
  ~DecimalCommaLocale() {
    std::setlocale(LC_NUMERIC, previous_.c_str());
  }
  [[nodiscard]] const std::string& locale_name() const { return name_; }

 private:
  std::string previous_;
  std::string name_;
};

const char* kExample31 = R"(
# Example 3.1 of the paper
mapping HI=B LO=D
task tau1 T=60 C=5 dal=B f=1e-5
task tau2 T=25 C=4 dal=B f=1e-5
task tau3 T=40 C=7 dal=D f=1e-5
task tau4 T=90 C=6 dal=D f=1e-5
task tau5 T=70 C=8 dal=D f=1e-5
)";

TEST(TasksetIo, ParsesExample31) {
  const auto ts = parse_task_set_string(kExample31);
  ASSERT_EQ(ts.size(), 5u);
  EXPECT_EQ(ts.mapping().hi, Dal::B);
  EXPECT_EQ(ts.mapping().lo, Dal::D);
  EXPECT_EQ(ts[0].name, "tau1");
  EXPECT_DOUBLE_EQ(ts[0].period, 60.0);
  EXPECT_DOUBLE_EQ(ts[0].deadline, 60.0);  // D defaults to T
  EXPECT_DOUBLE_EQ(ts[0].wcet, 5.0);
  EXPECT_EQ(ts[0].dal, Dal::B);
  EXPECT_DOUBLE_EQ(ts[0].failure_prob, 1e-5);
  EXPECT_EQ(ts.count(CritLevel::LO), 3u);
}

TEST(TasksetIo, ExplicitDeadline) {
  const auto ts = parse_task_set_string(
      "mapping HI=A LO=E\ntask x T=100 D=40 C=5 dal=A f=0.001\n");
  EXPECT_DOUBLE_EQ(ts[0].deadline, 40.0);
}

TEST(TasksetIo, CommentsAndBlankLinesIgnored) {
  const auto ts = parse_task_set_string(
      "# leading comment\n\nmapping HI=B LO=C   # trailing\n"
      "task x T=10 C=1 dal=B f=0 # end\n");
  EXPECT_EQ(ts.size(), 1u);
}

TEST(TasksetIo, RoundTrip) {
  const auto original = parse_task_set_string(kExample31);
  const auto reparsed = parse_task_set_string(task_set_to_string(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed[i].name, original[i].name);
    EXPECT_DOUBLE_EQ(reparsed[i].period, original[i].period);
    EXPECT_DOUBLE_EQ(reparsed[i].deadline, original[i].deadline);
    EXPECT_DOUBLE_EQ(reparsed[i].wcet, original[i].wcet);
    EXPECT_EQ(reparsed[i].dal, original[i].dal);
    EXPECT_DOUBLE_EQ(reparsed[i].failure_prob, original[i].failure_prob);
  }
}

TEST(TasksetIo, MissingMappingRejected) {
  EXPECT_THROW(parse_task_set_string("task x T=10 C=1 dal=B f=0\n"),
               ParseError);
}

TEST(TasksetIo, UnknownDirectiveRejected) {
  EXPECT_THROW(parse_task_set_string("mapping HI=B LO=C\nfoo bar\n"),
               ParseError);
}

TEST(TasksetIo, UnknownKeyRejected) {
  EXPECT_THROW(parse_task_set_string(
                   "mapping HI=B LO=C\ntask x T=10 C=1 dal=B q=3\n"),
               ParseError);
}

TEST(TasksetIo, MalformedNumberRejected) {
  EXPECT_THROW(parse_task_set_string(
                   "mapping HI=B LO=C\ntask x T=ten C=1 dal=B f=0\n"),
               ParseError);
}

TEST(TasksetIo, BadDalRejected) {
  EXPECT_THROW(parse_task_set_string("mapping HI=B LO=Z\n"), ParseError);
  EXPECT_THROW(parse_task_set_string(
                   "mapping HI=B LO=C\ntask x T=10 C=1 dal=Q f=0\n"),
               ParseError);
}

TEST(TasksetIo, InvalidModelRejectedWithParseError) {
  // Structurally fine but semantically invalid (zero WCET): the parser
  // surfaces the model validation as a ParseError.
  EXPECT_THROW(parse_task_set_string(
                   "mapping HI=B LO=C\ntask x T=10 C=0 dal=B f=0\n"),
               ParseError);
  // DAL outside the mapping.
  EXPECT_THROW(parse_task_set_string(
                   "mapping HI=B LO=C\ntask x T=10 C=1 dal=E f=0\n"),
               ParseError);
}

TEST(TasksetIo, TaskWithoutNameRejected) {
  EXPECT_THROW(parse_task_set_string("mapping HI=B LO=C\ntask\n"),
               ParseError);
}

TEST(TasksetIo, MissingEqualsRejected) {
  EXPECT_THROW(parse_task_set_string("mapping HIB LO=C\n"), ParseError);
}

// Regression: number parsing used std::stod/strtod, which honor
// LC_NUMERIC — under a decimal-comma locale "1.5" parsed as 1 with a
// leftover ".5" (silently wrong periods and failure probabilities).
// Both parsers now use std::from_chars, which is locale-independent.
TEST(TasksetIo, NumbersAreLocaleIndependent) {
  DecimalCommaLocale locale;
  if (locale.locale_name().empty()) {
    GTEST_SKIP() << "no decimal-comma locale installed on this host";
  }
  const auto ts = parse_task_set_string(
      "mapping HI=B LO=C\ntask x T=1.5 C=0.25 dal=B f=1.25e-5\n");
  EXPECT_DOUBLE_EQ(ts[0].period, 1.5);
  EXPECT_DOUBLE_EQ(ts[0].wcet, 0.25);
  EXPECT_DOUBLE_EQ(ts[0].failure_prob, 1.25e-5);
}

TEST(TasksetIo, JsonNumbersAreLocaleIndependent) {
  DecimalCommaLocale locale;
  if (locale.locale_name().empty()) {
    GTEST_SKIP() << "no decimal-comma locale installed on this host";
  }
  EXPECT_DOUBLE_EQ(json::parse("1.5").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(json::parse("-2.25e-3").as_number(), -2.25e-3);
}

}  // namespace
}  // namespace ftmc::io
