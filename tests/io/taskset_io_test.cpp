#include "ftmc/io/taskset_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ftmc::io {
namespace {

const char* kExample31 = R"(
# Example 3.1 of the paper
mapping HI=B LO=D
task tau1 T=60 C=5 dal=B f=1e-5
task tau2 T=25 C=4 dal=B f=1e-5
task tau3 T=40 C=7 dal=D f=1e-5
task tau4 T=90 C=6 dal=D f=1e-5
task tau5 T=70 C=8 dal=D f=1e-5
)";

TEST(TasksetIo, ParsesExample31) {
  const auto ts = parse_task_set_string(kExample31);
  ASSERT_EQ(ts.size(), 5u);
  EXPECT_EQ(ts.mapping().hi, Dal::B);
  EXPECT_EQ(ts.mapping().lo, Dal::D);
  EXPECT_EQ(ts[0].name, "tau1");
  EXPECT_DOUBLE_EQ(ts[0].period, 60.0);
  EXPECT_DOUBLE_EQ(ts[0].deadline, 60.0);  // D defaults to T
  EXPECT_DOUBLE_EQ(ts[0].wcet, 5.0);
  EXPECT_EQ(ts[0].dal, Dal::B);
  EXPECT_DOUBLE_EQ(ts[0].failure_prob, 1e-5);
  EXPECT_EQ(ts.count(CritLevel::LO), 3u);
}

TEST(TasksetIo, ExplicitDeadline) {
  const auto ts = parse_task_set_string(
      "mapping HI=A LO=E\ntask x T=100 D=40 C=5 dal=A f=0.001\n");
  EXPECT_DOUBLE_EQ(ts[0].deadline, 40.0);
}

TEST(TasksetIo, CommentsAndBlankLinesIgnored) {
  const auto ts = parse_task_set_string(
      "# leading comment\n\nmapping HI=B LO=C   # trailing\n"
      "task x T=10 C=1 dal=B f=0 # end\n");
  EXPECT_EQ(ts.size(), 1u);
}

TEST(TasksetIo, RoundTrip) {
  const auto original = parse_task_set_string(kExample31);
  const auto reparsed = parse_task_set_string(task_set_to_string(original));
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed[i].name, original[i].name);
    EXPECT_DOUBLE_EQ(reparsed[i].period, original[i].period);
    EXPECT_DOUBLE_EQ(reparsed[i].deadline, original[i].deadline);
    EXPECT_DOUBLE_EQ(reparsed[i].wcet, original[i].wcet);
    EXPECT_EQ(reparsed[i].dal, original[i].dal);
    EXPECT_DOUBLE_EQ(reparsed[i].failure_prob, original[i].failure_prob);
  }
}

TEST(TasksetIo, MissingMappingRejected) {
  EXPECT_THROW(parse_task_set_string("task x T=10 C=1 dal=B f=0\n"),
               ParseError);
}

TEST(TasksetIo, UnknownDirectiveRejected) {
  EXPECT_THROW(parse_task_set_string("mapping HI=B LO=C\nfoo bar\n"),
               ParseError);
}

TEST(TasksetIo, UnknownKeyRejected) {
  EXPECT_THROW(parse_task_set_string(
                   "mapping HI=B LO=C\ntask x T=10 C=1 dal=B q=3\n"),
               ParseError);
}

TEST(TasksetIo, MalformedNumberRejected) {
  EXPECT_THROW(parse_task_set_string(
                   "mapping HI=B LO=C\ntask x T=ten C=1 dal=B f=0\n"),
               ParseError);
}

TEST(TasksetIo, BadDalRejected) {
  EXPECT_THROW(parse_task_set_string("mapping HI=B LO=Z\n"), ParseError);
  EXPECT_THROW(parse_task_set_string(
                   "mapping HI=B LO=C\ntask x T=10 C=1 dal=Q f=0\n"),
               ParseError);
}

TEST(TasksetIo, InvalidModelRejectedWithParseError) {
  // Structurally fine but semantically invalid (zero WCET): the parser
  // surfaces the model validation as a ParseError.
  EXPECT_THROW(parse_task_set_string(
                   "mapping HI=B LO=C\ntask x T=10 C=0 dal=B f=0\n"),
               ParseError);
  // DAL outside the mapping.
  EXPECT_THROW(parse_task_set_string(
                   "mapping HI=B LO=C\ntask x T=10 C=1 dal=E f=0\n"),
               ParseError);
}

TEST(TasksetIo, TaskWithoutNameRejected) {
  EXPECT_THROW(parse_task_set_string("mapping HI=B LO=C\ntask\n"),
               ParseError);
}

TEST(TasksetIo, MissingEqualsRejected) {
  EXPECT_THROW(parse_task_set_string("mapping HIB LO=C\n"), ParseError);
}

}  // namespace
}  // namespace ftmc::io
