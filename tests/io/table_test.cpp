#include "ftmc/io/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ftmc/common/contracts.hpp"

namespace ftmc::io {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"n'", "U_MC"});
  t.add_row({"0", "0.73"});
  t.add_row({"10", "1.0944"});
  const std::string out = t.to_string();
  // Header, separator, two rows.
  std::istringstream is(out);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line.rfind("n'", 0), 0u);
  std::getline(is, line);
  EXPECT_EQ(line.find_first_not_of('-'), std::string::npos);
  std::getline(is, line);
  EXPECT_NE(line.find("0.73"), std::string::npos);
  std::getline(is, line);
  EXPECT_NE(line.find("1.0944"), std::string::npos);
}

TEST(Table, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(Table::num(0.5), "0.5");
  EXPECT_EQ(Table::num(1.23456789, 3), "1.23");
  EXPECT_EQ(Table::sci(2.04e-10), "2.04e-10");
  EXPECT_EQ(Table::sci(0.0), "0.00e+00");
}

TEST(Table, StreamOperator) {
  Table t({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.to_string());
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream os;
  write_csv(os, {"u", "ratio"}, {{"0.4", "1.0"}, {"0.9", "0.25"}});
  EXPECT_EQ(os.str(), "u,ratio\n0.4,1.0\n0.9,0.25\n");
}

}  // namespace
}  // namespace ftmc::io
