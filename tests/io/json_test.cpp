#include "ftmc/io/json.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string_view>

namespace ftmc::io {
namespace {

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(json::escape("tau1"), "tau1");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json::escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonNumber, SpecialValues) {
  EXPECT_EQ(json::number(std::nan("")), "null");
  EXPECT_EQ(json::number(std::numeric_limits<double>::infinity()),
            "\"inf\"");
  EXPECT_EQ(json::number(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
  EXPECT_EQ(json::number(2.0), "2");
}

TEST(JsonNumber, FullPrecisionRoundTrip) {
  const double v = 2.04e-10;
  EXPECT_DOUBLE_EQ(std::stod(json::number(v)), v);
}

TEST(JsonObject, OrderPreservingAndTyped) {
  const std::string s = json::Object{}
                            .add_string("name", "x")
                            .add_int("n", 3)
                            .add_bool("ok", true)
                            .add_number("u", 0.5)
                            .add_raw("list", "[1,2]")
                            .str();
  EXPECT_EQ(s, R"({"name":"x","n":3,"ok":true,"u":0.5,"list":[1,2]})");
}

TEST(JsonArray, JoinsValues) {
  EXPECT_EQ(json::array({}), "[]");
  EXPECT_EQ(json::array({"1", "\"a\""}), "[1,\"a\"]");
}

core::FtTaskSet example31() {
  return core::FtTaskSet(
      {core::FtTask{"tau1", 60, 60, 5, Dal::B, 1e-5},
       core::FtTask{"tau3", 40, 40, 7, Dal::D, 1e-5}},
      DualCriticalityMapping{Dal::B, Dal::D});
}

TEST(JsonTaskSet, ContainsMappingAndTasks) {
  const std::string s = task_set_to_json(example31());
  EXPECT_NE(s.find("\"hi_dal\":\"B\""), std::string::npos);
  EXPECT_NE(s.find("\"lo_dal\":\"D\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"tau1\""), std::string::npos);
  EXPECT_NE(s.find("\"crit\":\"LO\""), std::string::npos);
  EXPECT_NE(s.find("\"failure_prob\":1.0000000000000001e-05"),
            std::string::npos);
}

TEST(JsonTaskSet, RoundTripsThroughParser) {
  const core::FtTaskSet original = example31();
  const core::FtTaskSet parsed =
      task_set_from_json(json::parse(task_set_to_json(original)));
  // Emission is canonical: an exact round trip re-emits the same bytes
  // (the property the serve answer cache keys on).
  EXPECT_EQ(task_set_to_json(parsed), task_set_to_json(original));
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].name, original[i].name);
    EXPECT_EQ(parsed[i].period, original[i].period);
    EXPECT_EQ(parsed[i].deadline, original[i].deadline);
    EXPECT_EQ(parsed[i].wcet, original[i].wcet);
    EXPECT_EQ(parsed[i].failure_prob, original[i].failure_prob);
    EXPECT_EQ(parsed[i].dal, original[i].dal);
  }
}

TEST(JsonTaskSet, FromJsonValidatesInput) {
  EXPECT_THROW((void)task_set_from_json(json::parse("{}")), ParseError)
      << "mapping is required";
  EXPECT_THROW(
      (void)task_set_from_json(json::parse(
          "{\"hi_dal\":\"B\",\"lo_dal\":\"D\",\"tasks\":["
          "{\"name\":\"t\",\"period_ms\":10,\"wcet_ms\":0,"
          "\"dal\":\"B\",\"failure_prob\":1e-5}]}")),
      ParseError)
      << "zero wcet violates the task contract";
  EXPECT_THROW(
      (void)task_set_from_json(json::parse(
          "{\"hi_dal\":\"B\",\"lo_dal\":\"D\",\"tasks\":["
          "{\"name\":\"t\",\"period_ms\":10,\"wcet_ms\":1,"
          "\"dal\":\"B\",\"failure_prob\":1e-5,\"extra\":1}]}")),
      ParseError)
      << "unknown task keys are rejected";
}

TEST(JsonFtsResult, SerializesVerdictAndProfiles) {
  core::FtsConfig cfg;
  cfg.adaptation.kind = mcs::AdaptationKind::kKilling;
  cfg.adaptation.os_hours = 1.0;
  core::FtTaskSet ts(
      {core::FtTask{"tau1", 60, 60, 5, Dal::B, 1e-5},
       core::FtTask{"tau2", 25, 25, 4, Dal::B, 1e-5},
       core::FtTask{"tau3", 40, 40, 7, Dal::D, 1e-5},
       core::FtTask{"tau4", 90, 90, 6, Dal::D, 1e-5},
       core::FtTask{"tau5", 70, 70, 8, Dal::D, 1e-5}},
      DualCriticalityMapping{Dal::B, Dal::D});
  const auto result = core::ft_schedule(ts, cfg);
  const std::string s = fts_result_to_json(result);
  EXPECT_NE(s.find("\"success\":true"), std::string::npos);
  EXPECT_NE(s.find("\"n_hi\":3"), std::string::npos);
  EXPECT_NE(s.find("\"n_adapt\":2"), std::string::npos);
  EXPECT_NE(s.find("\"scheduler\":\"EDF-VD\""), std::string::npos);
  EXPECT_NE(s.find("\"wcet_hi_ms\":15"), std::string::npos);
  // Balanced braces (cheap structural sanity).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
}

TEST(JsonParse, ScalarsAndContainers) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse(" false ").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(json::parse("\"a\\n\\\"b\\u0041\"").as_string(), "a\n\"bA");

  const json::Value arr = json::parse("[1, [2, 3], {\"k\": 4}]");
  ASSERT_EQ(arr.kind(), json::Value::Kind::kArray);
  ASSERT_EQ(arr.items().size(), 3u);
  EXPECT_DOUBLE_EQ(arr.items()[1].items()[1].as_number(), 3.0);
  EXPECT_DOUBLE_EQ(arr.items()[2].at("k").as_number(), 4.0);

  const json::Value obj = json::parse("{\"a\": 1, \"b\": {\"c\": true}}");
  ASSERT_EQ(obj.kind(), json::Value::Kind::kObject);
  EXPECT_EQ(obj.fields().size(), 2u);
  EXPECT_TRUE(obj.at("b").at("c").as_bool());
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW((void)obj.at("missing"), ParseError);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)json::parse(""), ParseError);
  EXPECT_THROW((void)json::parse("{"), ParseError);
  EXPECT_THROW((void)json::parse("[1,]"), ParseError);
  EXPECT_THROW((void)json::parse("{\"a\":1,}"), ParseError);
  EXPECT_THROW((void)json::parse("1 2"), ParseError);  // trailing garbage
  EXPECT_THROW((void)json::parse("'single'"), ParseError);
  EXPECT_THROW((void)json::parse("{\"a\":1,\"a\":2}"), ParseError)
      << "duplicate keys are ambiguous and must be rejected";
  // Depth bomb: deeper than the parser's recursion limit.
  const std::string deep(200, '[');
  EXPECT_THROW((void)json::parse(deep), ParseError);
}

TEST(JsonParse, SurrogatePairsDecodeToUtf8) {
  // U+1D11E (musical G clef): high surrogate D834 + low surrogate DD1E.
  EXPECT_EQ(json::parse("\"\\ud834\\udd1e\"").as_string(),
            "\xf0\x9d\x84\x9e");
  // U+1F600 (grinning face), the classic beyond-BMP regression.
  EXPECT_EQ(json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");
  // Pairs compose with surrounding text and BMP escapes.
  EXPECT_EQ(json::parse("\"a\\u0041\\ud83d\\ude00z\"").as_string(),
            "aA\xf0\x9f\x98\x80z");
}

TEST(JsonParse, LoneSurrogatesAreRejectedWithOffsets) {
  // Unpaired surrogate halves are not scalar values (RFC 8259 sec. 7 /
  // Unicode D91); each rejection names the offending escape's offset.
  const auto offset_of = [](std::string_view text) {
    try {
      (void)json::parse(text);
    } catch (const ParseError& e) {
      const std::string what = e.what();
      const auto pos = what.find("offset ");
      if (pos == std::string::npos) return std::size_t(-1);
      return static_cast<std::size_t>(
          std::atoll(what.c_str() + pos + 7));
    }
    return std::size_t(-2);  // did not throw
  };
  EXPECT_THROW((void)json::parse("\"\\udd1e\""), ParseError)
      << "lone low surrogate";
  EXPECT_THROW((void)json::parse("\"\\ud834\""), ParseError)
      << "high surrogate at end of string";
  EXPECT_THROW((void)json::parse("\"\\ud834x\""), ParseError)
      << "high surrogate followed by a plain character";
  EXPECT_THROW((void)json::parse("\"\\ud834\\u0041\""), ParseError)
      << "high surrogate followed by a non-surrogate escape";
  EXPECT_THROW((void)json::parse("\"\\ud834\\ud834\""), ParseError)
      << "high surrogate followed by another high surrogate";
  // The reported offset is the backslash of the bad escape, not the
  // position the scanner had reached.
  EXPECT_EQ(offset_of("\"\\udd1e\""), 1u);
  EXPECT_EQ(offset_of("[1, \"x\\ud834\"]"), 6u);
}

TEST(JsonParse, OutOfRangeNumberLiteralsAreRejected) {
  // Beyond-double literals are a parse error (explicit), not a silent
  // saturation to infinity or zero as with strtod.
  EXPECT_THROW((void)json::parse("1e400"), ParseError);
  EXPECT_THROW((void)json::parse("-1e400"), ParseError);
  EXPECT_THROW((void)json::parse("1e-400"), ParseError);  // underflow
  // The largest finite double still parses.
  EXPECT_DOUBLE_EQ(json::parse("1.7976931348623157e308").as_number(),
                   1.7976931348623157e308);
}

TEST(JsonParse, NumberEmissionRoundTripsThroughParser) {
  // The number() contract: every double comes back bit-equal (NaN by
  // kind) when re-parsed with as_number.
  const double cases[] = {0.0, -0.0, 2.0, 2.04e-10, 1.0 / 3.0,
                          -12345.678901234567, 1e308};
  for (const double v : cases) {
    EXPECT_DOUBLE_EQ(json::parse(json::number(v)).as_number(), v);
  }
  EXPECT_EQ(json::parse(json::number(
                            std::numeric_limits<double>::infinity()))
                .as_number(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(json::parse(json::number(
                            -std::numeric_limits<double>::infinity()))
                .as_number(),
            -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(json::parse(json::number(std::nan(""))).as_number()));
  // Only the two sentinel strings are numeric; others stay strings.
  EXPECT_THROW((void)json::parse("\"fast\"").as_number(), ParseError);
}

TEST(JsonParse, Uint64AcceptsFullRangeSeedsAsStrings) {
  EXPECT_EQ(json::parse("0").as_uint64(), 0u);
  EXPECT_EQ(json::parse("20140601").as_uint64(), 20140601u);
  // Full 64-bit seeds do not fit a double; the decimal-string form does.
  EXPECT_EQ(json::parse("\"18446744073709551615\"").as_uint64(),
            18446744073709551615ULL);
  EXPECT_THROW((void)json::parse("\"18446744073709551616\"").as_uint64(),
               ParseError);  // overflow
  EXPECT_THROW((void)json::parse("1.5").as_uint64(), ParseError);
  EXPECT_THROW((void)json::parse("-1").as_uint64(), ParseError);
  EXPECT_THROW((void)json::parse("\"12x\"").as_uint64(), ParseError);
}

TEST(JsonSweep, SerializesPoints) {
  const std::vector<core::AdaptationSweepPoint> pts = {
      {0, 0.73, 14400.0, true, false},
      {3, std::numeric_limits<double>::infinity(), 1e-10, false, true}};
  const std::string s = sweep_to_json(pts);
  EXPECT_NE(s.find("\"n_adapt\":0"), std::string::npos);
  EXPECT_NE(s.find("\"schedulable\":true"), std::string::npos);
  EXPECT_NE(s.find("\"u_mc\":\"inf\""), std::string::npos);
  EXPECT_NE(s.find("\"safe\":true"), std::string::npos);
}

}  // namespace
}  // namespace ftmc::io
