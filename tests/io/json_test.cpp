#include "ftmc/io/json.hpp"

#include <gtest/gtest.h>

namespace ftmc::io {
namespace {

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(json::escape("tau1"), "tau1");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json::escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonNumber, SpecialValues) {
  EXPECT_EQ(json::number(std::nan("")), "null");
  EXPECT_EQ(json::number(std::numeric_limits<double>::infinity()),
            "\"inf\"");
  EXPECT_EQ(json::number(-std::numeric_limits<double>::infinity()),
            "\"-inf\"");
  EXPECT_EQ(json::number(2.0), "2");
}

TEST(JsonNumber, FullPrecisionRoundTrip) {
  const double v = 2.04e-10;
  EXPECT_DOUBLE_EQ(std::stod(json::number(v)), v);
}

TEST(JsonObject, OrderPreservingAndTyped) {
  const std::string s = json::Object{}
                            .add_string("name", "x")
                            .add_int("n", 3)
                            .add_bool("ok", true)
                            .add_number("u", 0.5)
                            .add_raw("list", "[1,2]")
                            .str();
  EXPECT_EQ(s, R"({"name":"x","n":3,"ok":true,"u":0.5,"list":[1,2]})");
}

TEST(JsonArray, JoinsValues) {
  EXPECT_EQ(json::array({}), "[]");
  EXPECT_EQ(json::array({"1", "\"a\""}), "[1,\"a\"]");
}

core::FtTaskSet example31() {
  return core::FtTaskSet(
      {core::FtTask{"tau1", 60, 60, 5, Dal::B, 1e-5},
       core::FtTask{"tau3", 40, 40, 7, Dal::D, 1e-5}},
      DualCriticalityMapping{Dal::B, Dal::D});
}

TEST(JsonTaskSet, ContainsMappingAndTasks) {
  const std::string s = task_set_to_json(example31());
  EXPECT_NE(s.find("\"hi_dal\":\"B\""), std::string::npos);
  EXPECT_NE(s.find("\"lo_dal\":\"D\""), std::string::npos);
  EXPECT_NE(s.find("\"name\":\"tau1\""), std::string::npos);
  EXPECT_NE(s.find("\"crit\":\"LO\""), std::string::npos);
  EXPECT_NE(s.find("\"failure_prob\":1.0000000000000001e-05"),
            std::string::npos);
}

TEST(JsonFtsResult, SerializesVerdictAndProfiles) {
  core::FtsConfig cfg;
  cfg.adaptation.kind = mcs::AdaptationKind::kKilling;
  cfg.adaptation.os_hours = 1.0;
  core::FtTaskSet ts(
      {core::FtTask{"tau1", 60, 60, 5, Dal::B, 1e-5},
       core::FtTask{"tau2", 25, 25, 4, Dal::B, 1e-5},
       core::FtTask{"tau3", 40, 40, 7, Dal::D, 1e-5},
       core::FtTask{"tau4", 90, 90, 6, Dal::D, 1e-5},
       core::FtTask{"tau5", 70, 70, 8, Dal::D, 1e-5}},
      DualCriticalityMapping{Dal::B, Dal::D});
  const auto result = core::ft_schedule(ts, cfg);
  const std::string s = fts_result_to_json(result);
  EXPECT_NE(s.find("\"success\":true"), std::string::npos);
  EXPECT_NE(s.find("\"n_hi\":3"), std::string::npos);
  EXPECT_NE(s.find("\"n_adapt\":2"), std::string::npos);
  EXPECT_NE(s.find("\"scheduler\":\"EDF-VD\""), std::string::npos);
  EXPECT_NE(s.find("\"wcet_hi_ms\":15"), std::string::npos);
  // Balanced braces (cheap structural sanity).
  EXPECT_EQ(std::count(s.begin(), s.end(), '{'),
            std::count(s.begin(), s.end(), '}'));
  EXPECT_EQ(std::count(s.begin(), s.end(), '['),
            std::count(s.begin(), s.end(), ']'));
}

TEST(JsonSweep, SerializesPoints) {
  const std::vector<core::AdaptationSweepPoint> pts = {
      {0, 0.73, 14400.0, true, false},
      {3, std::numeric_limits<double>::infinity(), 1e-10, false, true}};
  const std::string s = sweep_to_json(pts);
  EXPECT_NE(s.find("\"n_adapt\":0"), std::string::npos);
  EXPECT_NE(s.find("\"schedulable\":true"), std::string::npos);
  EXPECT_NE(s.find("\"u_mc\":\"inf\""), std::string::npos);
  EXPECT_NE(s.find("\"safe\":true"), std::string::npos);
}

}  // namespace
}  // namespace ftmc::io
