/// Property test for the acceptance gate of the parallel runtime: for
/// the same base seed, a campaign sharded over N > 1 workers must equal
/// the serial campaign bit for bit — every counter and every double.
/// Same for design-space exploration.
#include <gtest/gtest.h>

#include "ftmc/core/design_space.hpp"
#include "ftmc/sim/monte_carlo.hpp"

namespace ftmc {
namespace {

sim::SimTask task(const std::string& name, sim::Tick period, sim::Tick wcet,
                  CritLevel crit, int max_attempts, int adapt_threshold,
                  double f) {
  sim::SimTask t;
  t.name = name;
  t.period = period;
  t.deadline = period;
  t.wcet = wcet;
  t.crit = crit;
  t.max_attempts = max_attempts;
  t.adapt_threshold = adapt_threshold;
  t.failure_prob = f;
  t.virtual_deadline = period;
  return t;
}

void expect_bit_identical(const sim::MonteCarloResult& a,
                          const sim::MonteCarloResult& b) {
  EXPECT_EQ(a.trigger.successes, b.trigger.successes);
  EXPECT_EQ(a.trigger.trials, b.trigger.trials);
  EXPECT_EQ(a.job_failure_hi.successes, b.job_failure_hi.successes);
  EXPECT_EQ(a.job_failure_hi.trials, b.job_failure_hi.trials);
  EXPECT_EQ(a.job_failure_lo.successes, b.job_failure_lo.successes);
  EXPECT_EQ(a.job_failure_lo.trials, b.job_failure_lo.trials);
  // EXPECT_EQ on doubles is exact comparison — bit-identical, not "close".
  EXPECT_EQ(a.simulated_hours, b.simulated_hours);
  EXPECT_EQ(a.pfh_hi, b.pfh_hi);
  EXPECT_EQ(a.pfh_lo, b.pfh_lo);
}

TEST(ParallelDeterminism, MonteCarloCampaignMatchesSerialBitForBit) {
  const std::vector<sim::SimTask> tasks = {
      task("h1", 50'000, 2'000, CritLevel::HI, 3, 1, 0.05),
      task("h2", 120'000, 5'000, CritLevel::HI, 2, 1, 0.02),
      task("l1", 80'000, 3'000, CritLevel::LO, 2, 2, 0.08),
      task("l2", 200'000, 9'000, CritLevel::LO, 1, 1, 0.01)};

  for (const std::uint64_t seed : {1ull, 2ull, 20140601ull}) {
    sim::SimConfig cfg;
    cfg.policy = sim::PolicyKind::kEdfVd;
    cfg.adaptation = mcs::AdaptationKind::kKilling;
    cfg.random_phasing = true;

    sim::MonteCarloOptions opt;
    opt.missions = 97;  // not a multiple of the chunk size
    opt.mission_length = 400'000;
    opt.seed = seed;

    opt.threads = 1;
    const auto serial = monte_carlo_campaign(tasks, cfg, opt);
    for (const int threads : {2, 4, 0 /* hardware */}) {
      opt.threads = threads;
      const auto parallel = monte_carlo_campaign(tasks, cfg, opt);
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      expect_bit_identical(serial, parallel);
    }
  }
}

TEST(ParallelDeterminism, CampaignsWithDifferentSeedsDiffer) {
  // Sanity for the independence fix: adjacent base seeds should no
  // longer share (missions - 1) of their mission streams, so aggregate
  // statistics over many stochastic missions should differ.
  const std::vector<sim::SimTask> tasks = {
      task("h", 50'000, 2'000, CritLevel::HI, 3, 1, 0.1),
      task("l", 70'000, 2'500, CritLevel::LO, 2, 2, 0.1)};
  sim::SimConfig cfg;
  cfg.policy = sim::PolicyKind::kEdfVd;
  sim::MonteCarloOptions opt;
  opt.missions = 200;
  opt.mission_length = 500'000;
  opt.seed = 1;
  const auto a = monte_carlo_campaign(tasks, cfg, opt);
  opt.seed = 2;
  const auto b = monte_carlo_campaign(tasks, cfg, opt);
  EXPECT_TRUE(a.job_failure_hi.successes != b.job_failure_hi.successes ||
              a.job_failure_lo.successes != b.job_failure_lo.successes ||
              a.trigger.successes != b.trigger.successes);
}

TEST(ParallelDeterminism, DesignSpaceMatchesSerial) {
  const core::FtTaskSet ts(
      {core::FtTask{"tau1", 60, 60, 5, Dal::B, 1e-5},
       core::FtTask{"tau2", 25, 25, 4, Dal::B, 1e-5},
       core::FtTask{"tau3", 40, 40, 7, Dal::D, 1e-5},
       core::FtTask{"tau4", 90, 90, 6, Dal::D, 1e-5}},
      DualCriticalityMapping{Dal::B, Dal::D});

  core::DesignSpaceOptions opt;
  opt.degradation_factors = {2.0, 3.0, 6.0, 12.0};
  opt.segment_counts = {1, 2, 4};

  opt.threads = 1;
  const auto serial = core::explore_design_space(ts, opt);
  opt.threads = 4;
  const auto parallel = core::explore_design_space(ts, opt);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(serial[i].kind, parallel[i].kind);
    EXPECT_EQ(serial[i].degradation_factor, parallel[i].degradation_factor);
    EXPECT_EQ(serial[i].segments, parallel[i].segments);
    EXPECT_EQ(serial[i].certifiable, parallel[i].certifiable);
    EXPECT_EQ(serial[i].n_adapt, parallel[i].n_adapt);
    EXPECT_EQ(serial[i].pfh_lo, parallel[i].pfh_lo);
    EXPECT_EQ(serial[i].u_mc, parallel[i].u_mc);
    EXPECT_EQ(serial[i].service_quality, parallel[i].service_quality);
    EXPECT_EQ(serial[i].safety_margin_orders,
              parallel[i].safety_margin_orders);
    EXPECT_EQ(serial[i].schedulability_margin,
              parallel[i].schedulability_margin);
  }
  EXPECT_EQ(core::pareto_front(serial), core::pareto_front(parallel));
}

}  // namespace
}  // namespace ftmc
