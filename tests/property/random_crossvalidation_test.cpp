/// Randomized cross-validation: generate hundreds of task sets with the
/// paper's Appendix C generator and check structural invariants that tie
/// the analysis, conversion, scheduling, and I/O layers together. These
/// properties must hold on EVERY draw, not just on curated examples.
#include <gtest/gtest.h>

#include <cmath>

#include "ftmc/core/conversion.hpp"
#include "ftmc/core/ft_scheduler.hpp"
#include "ftmc/core/heterogeneous.hpp"
#include "ftmc/io/taskset_io.hpp"
#include "ftmc/mcs/edf.hpp"
#include "ftmc/mcs/edf_vd.hpp"
#include "ftmc/mcs/mc_dbf.hpp"
#include "ftmc/taskgen/generator.hpp"

namespace ftmc {
namespace {

using core::FtTaskSet;
using core::PerTaskProfile;

/// One generator configuration per test-suite instantiation.
struct Scenario {
  double utilization;
  double failure_prob;
  Dal lo_dal;
};

class RandomSets : public ::testing::TestWithParam<Scenario> {
 protected:
  std::vector<FtTaskSet> draw(int count) const {
    taskgen::GeneratorParams params;
    params.target_utilization = GetParam().utilization;
    params.failure_prob = GetParam().failure_prob;
    params.mapping = {Dal::B, GetParam().lo_dal};
    taskgen::Rng rng(0xF7u ^ static_cast<std::uint64_t>(
                                 GetParam().utilization * 1000));
    std::vector<FtTaskSet> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      out.push_back(taskgen::generate_task_set(params, rng));
    }
    return out;
  }
};

TEST_P(RandomSets, ConversionPreservesUtilizationIdentities) {
  for (const FtTaskSet& ts : draw(50)) {
    const auto mc = core::convert_to_mc(ts, 3, 2, 1);
    EXPECT_NEAR(mc.utilization(CritLevel::HI, CritLevel::HI),
                3.0 * ts.utilization(CritLevel::HI), 1e-9);
    EXPECT_NEAR(mc.utilization(CritLevel::HI, CritLevel::LO),
                1.0 * ts.utilization(CritLevel::HI), 1e-9);
    EXPECT_NEAR(mc.utilization(CritLevel::LO, CritLevel::LO),
                2.0 * ts.utilization(CritLevel::LO), 1e-9);
  }
}

TEST_P(RandomSets, ClosedFormUmcMatchesDirectAnalysis) {
  // Algorithm 2's closed form and analyze_edf_vd on the materialized
  // conversion must agree on every draw and every profile.
  for (const FtTaskSet& ts : draw(30)) {
    for (int n_adapt = 0; n_adapt <= 3; ++n_adapt) {
      const double closed = core::umc_closed_form(
          ts.utilization(CritLevel::HI), ts.utilization(CritLevel::LO), 3,
          2, n_adapt, mcs::AdaptationKind::kKilling, 1.0);
      const auto direct =
          mcs::analyze_edf_vd(core::convert_to_mc(ts, 3, 2, n_adapt));
      if (std::isinf(closed) || std::isinf(direct.u_mc)) {
        // Both paths must agree that the set saturates (U_LO^LO >= 1).
        EXPECT_EQ(std::isinf(closed), std::isinf(direct.u_mc));
      } else {
        EXPECT_NEAR(closed, direct.u_mc, 1e-9);
      }
    }
  }
}

TEST_P(RandomSets, FtsSuccessImpliesAllGuarantees) {
  // Theorem 4.1: on success, both PFH requirements hold at the chosen
  // profiles and the converted set passes the schedulability test.
  const auto reqs = core::SafetyRequirements::do178b();
  int successes = 0;
  for (const FtTaskSet& ts : draw(60)) {
    core::FtsConfig cfg;
    cfg.adaptation.kind = mcs::AdaptationKind::kKilling;
    cfg.adaptation.os_hours = 1.0;
    const auto r = core::ft_schedule(ts, cfg);
    if (!r.success) continue;
    ++successes;
    EXPECT_TRUE(reqs.satisfied(ts.mapping().hi, r.pfh_hi));
    EXPECT_TRUE(reqs.satisfied(ts.mapping().lo, r.pfh_lo));
    if (r.n_adapt < r.n_hi) {
      EXPECT_TRUE(mcs::EdfVdTest{}.schedulable(r.converted));
    } else {
      EXPECT_TRUE(mcs::EdfWorstCaseTest{}.schedulable(r.converted));
    }
    // Chosen profiles respect the algorithm's bracket.
    ASSERT_TRUE(r.n1_hi.has_value());
    ASSERT_TRUE(r.n2_hi.has_value());
    EXPECT_LE(*r.n1_hi, r.n_adapt);
    EXPECT_EQ(*r.n2_hi, r.n_adapt);
  }
  // The scenarios are chosen so that some sets are schedulable; an
  // all-failure run would make the assertions above vacuous. Exception:
  // killing with LO = C is *expected* to fail almost always (the paper's
  // Fig. 3b result), so no success quota applies there.
  if (GetParam().utilization <= 0.5 && GetParam().lo_dal == Dal::D) {
    EXPECT_GT(successes, 0);
  }
}

TEST_P(RandomSets, KillingBoundDominatesDegradationAndPlain) {
  // Ordering of the three LO-level bounds at identical profiles:
  // degradation (Eq. 7) <= plain (Eq. 2) <= killing (Eq. 5).
  for (const FtTaskSet& ts : draw(20)) {
    const PerTaskProfile n = core::uniform_profile(ts, 3, 2);
    const PerTaskProfile na = core::uniform_profile(ts, 2, 0);
    const double plain = core::pfh_plain(ts, n, CritLevel::LO);
    core::KillingBoundOptions opt;
    opt.os_hours = 0.01;  // keep the Eq. (5) sum cheap
    const double killing = core::pfh_lo_killing(ts, n, na, opt);
    const double degradation = core::pfh_lo_degradation(ts, n, na, 0.01);
    EXPECT_LE(degradation, plain * (1.0 + 1e-9));
    EXPECT_GE(killing, plain * (1.0 - 1e-9));
  }
}

TEST_P(RandomSets, SurvivalMonotoneInProfileAndTime) {
  for (const FtTaskSet& ts : draw(20)) {
    // In n': larger profiles -> harder to trigger -> larger R.
    double prev = -1.0;
    for (int na = 0; na <= 3; ++na) {
      const double r = core::survival_no_trigger(
                           ts, core::uniform_profile(ts, na, 0), 60'000.0)
                           .linear();
      EXPECT_GE(r, prev);
      prev = r;
    }
    // In t: longer windows -> more rounds -> smaller R.
    const auto na = core::uniform_profile(ts, 1, 0);
    double prev_t = 2.0;
    for (double t = 0.0; t <= 300'000.0; t += 60'000.0) {
      const double r = core::survival_no_trigger(ts, na, t).linear();
      EXPECT_LE(r, prev_t);
      prev_t = r;
    }
  }
}

TEST_P(RandomSets, IoRoundTripIsLossless) {
  for (const FtTaskSet& ts : draw(20)) {
    const auto back = io::parse_task_set_string(io::task_set_to_string(ts));
    ASSERT_EQ(back.size(), ts.size());
    for (std::size_t i = 0; i < ts.size(); ++i) {
      EXPECT_EQ(back[i].name, ts[i].name);
      EXPECT_DOUBLE_EQ(back[i].period, ts[i].period);
      EXPECT_DOUBLE_EQ(back[i].deadline, ts[i].deadline);
      EXPECT_DOUBLE_EQ(back[i].wcet, ts[i].wcet);
      EXPECT_EQ(back[i].dal, ts[i].dal);
      EXPECT_DOUBLE_EQ(back[i].failure_prob, ts[i].failure_prob);
    }
  }
}

TEST_P(RandomSets, HeterogeneousAllocationStaysWithinBudget) {
  core::AdaptationModel model;
  model.kind = mcs::AdaptationKind::kKilling;
  model.os_hours = 0.01;
  const auto reqs = core::SafetyRequirements::do178b();
  for (const FtTaskSet& ts : draw(10)) {
    const auto r =
        core::optimize_adaptation_profiles(ts, 3, 2, model, reqs);
    if (!r.feasible) continue;
    EXPECT_LE(r.budget_used, r.budget + 1e-9);
    double recomputed = 0.0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts.crit_of(i) == CritLevel::HI) {
        EXPECT_LE(r.n_adapt[i], 3);
        recomputed += r.n_adapt[i] * ts[i].utilization();
      } else {
        EXPECT_EQ(r.n_adapt[i], 0);
      }
    }
    EXPECT_NEAR(recomputed, r.budget_used, 1e-9);
  }
}

TEST_P(RandomSets, McDbfAgreesWithEdfVdOnPlainFeasibleSets) {
  // When worst-case reservations fit, every killing-mode test must
  // accept (the mode switch only ever removes load).
  for (const FtTaskSet& ts : draw(30)) {
    const auto mc = core::convert_to_mc(ts, 3, 2, 2);
    if (mcs::EdfWorstCaseTest{}.schedulable(mc)) {
      EXPECT_TRUE(mcs::EdfVdTest{}.schedulable(mc));
      EXPECT_TRUE(mcs::McDbfTest{}.schedulable(mc));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, RandomSets,
    ::testing::Values(Scenario{0.3, 1e-5, Dal::D},
                      Scenario{0.5, 1e-5, Dal::D},
                      Scenario{0.5, 1e-5, Dal::C},
                      Scenario{0.8, 1e-5, Dal::D},
                      Scenario{0.5, 1e-3, Dal::D},
                      Scenario{0.9, 1e-4, Dal::C}));

}  // namespace
}  // namespace ftmc
