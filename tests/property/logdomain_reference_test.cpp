/// Property test: the log-domain probability helpers against a
/// long-double reference implementation, over the full range the PFH
/// analysis exercises (p down to 1e-45 from f^n with f = 1e-5, n = 9;
/// trial counts r up to 1e6 job releases per hour).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ftmc/prob/safe_math.hpp"

namespace ftmc::prob {
namespace {

/// 1 - (1-p)^r in long double. The complement must go through expm1:
/// a literal 1 - exp(...) cancels catastrophically once r*p drops below
/// the long-double epsilon (~1e-19) — the very failure mode the helpers
/// under test exist to avoid.
long double ref_failure(long double p, long double r) {
  if (p >= 1.0L) return r == 0.0L ? 0.0L : 1.0L;
  return -std::expm1(r * std::log1p(-p));
}

long double ref_log1mexp(long double x) {
  return std::log(-std::expm1(x));
}

/// Relative difference against the reference, guarding tiny magnitudes.
double rel_err(long double got, long double want) {
  const long double scale =
      std::max(std::abs(want), static_cast<long double>(1e-300));
  return static_cast<double>(std::abs(got - want) / scale);
}

TEST(LogDomainReference, Log1mexpAcrossBothBranches) {
  // The Maechler split at -ln 2 must agree with the long-double
  // reference on both sides and at the seam.
  std::mt19937_64 rng(20260806);
  std::uniform_real_distribution<double> exponent(-40.0, -1e-12);
  for (int i = 0; i < 20'000; ++i) {
    const double x = -std::exp(exponent(rng));  // x in (-inf, 0)
    const double got = log1mexp(x);
    const long double want = ref_log1mexp(static_cast<long double>(x));
    EXPECT_LT(rel_err(got, want), 1e-12) << "x=" << x;
  }
  // Seam and extremes.
  for (const double x : {-0.6931471805599453, -1e-300, -745.0}) {
    EXPECT_LT(rel_err(log1mexp(x), ref_log1mexp(x)), 1e-12) << "x=" << x;
  }
}

TEST(LogDomainReference, SurvivalOverTheAnalysisRange) {
  // p in [1e-45, 0.5] (log-uniform), r in [1, 1e6] (log-uniform):
  // log_survival and its complement must track the long-double
  // reference to near machine precision in *relative* terms, which is
  // exactly what the PFH bounds need (the failure probability of
  // interest is often ~1e-9 riding on a survival of ~1 - 1e-9).
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> log_p(std::log(1e-45),
                                               std::log(0.5));
  std::uniform_real_distribution<double> log_r(0.0, std::log(1e6));
  for (int i = 0; i < 20'000; ++i) {
    const double p = std::exp(log_p(rng));
    const double r = std::floor(std::exp(log_r(rng)));

    const double got_log = log_survival(p, r);
    const long double want_log =
        static_cast<long double>(r) *
        std::log1p(-static_cast<long double>(p));
    EXPECT_LT(rel_err(got_log, want_log), 1e-13)
        << "p=" << p << " r=" << r;

    const double got_fail = complement_from_log(got_log);
    const long double want_fail = ref_failure(
        static_cast<long double>(p), static_cast<long double>(r));
    // Relative accuracy of the *small* failure probability is the whole
    // point of the log-domain helpers; a few ulps over r ~ 1e6 trials.
    EXPECT_LT(rel_err(got_fail, want_fail), 1e-13)
        << "p=" << p << " r=" << r;
    // An upper-tail sanity anchor: 1 - (1-p)^r <= r*p (Weierstrass).
    EXPECT_LE(got_fail,
              static_cast<double>(r) * p * (1.0 + 1e-12) + 1e-300);
  }
}

TEST(LogDomainReference, PowProbMatchesLongDoubleReference) {
  // p^n for per-attempt fault probabilities: p in [1e-5, 0.5], n up to 9
  // (deepest re-execution profile the paper uses), plus the corners.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> log_p(std::log(1e-5),
                                               std::log(0.5));
  for (int i = 0; i < 5'000; ++i) {
    const double p = std::exp(log_p(rng));
    for (long long n = 0; n <= 9; ++n) {
      const long double want =
          std::pow(static_cast<long double>(p), static_cast<long double>(n));
      EXPECT_LT(rel_err(pow_prob(p, n), want), 1e-12)
          << "p=" << p << " n=" << n;
    }
  }
  EXPECT_DOUBLE_EQ(pow_prob(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(pow_prob(0.0, 3), 0.0);
  EXPECT_DOUBLE_EQ(pow_prob(1.0, 1'000'000), 1.0);
}

}  // namespace
}  // namespace ftmc::prob
