/// Randomized end-to-end cross-validation of the *schedulability* claims:
/// whatever configuration FT-S accepts must run without deadline misses in
/// the discrete-event simulator under worst-case conditions (synchronous
/// releases, full-WCET attempts, adversarial fault injection). This is the
/// strongest check in the suite — an unsound schedulability test or a
/// scheduler bug in the simulator shows up here as a concrete miss.
#include <gtest/gtest.h>

#include <algorithm>

#include "ftmc/core/ft_scheduler.hpp"
#include "ftmc/mcs/edf_vd.hpp"
#include "ftmc/sim/engine.hpp"
#include "ftmc/taskgen/generator.hpp"

namespace ftmc {
namespace {

struct Scenario {
  double utilization;
  mcs::AdaptationKind kind;
  std::uint64_t seed;
};

class AcceptedSystems : public ::testing::TestWithParam<Scenario> {};

TEST_P(AcceptedSystems, NoMissesUnderWorstCaseFaultInjection) {
  const Scenario scenario = GetParam();
  taskgen::GeneratorParams params;
  params.target_utilization = scenario.utilization;
  // Inflate f so that re-executions and mode switches actually occur in
  // a short horizon; keep LO at level D so FT-S accepts with killing.
  params.failure_prob = 0.02;
  params.mapping = {Dal::B, Dal::D};
  taskgen::Rng rng(scenario.seed);

  int simulated = 0;
  for (int attempt = 0; attempt < 60 && simulated < 4; ++attempt) {
    const core::FtTaskSet ts = taskgen::generate_task_set(params, rng);
    core::FtsConfig cfg;
    cfg.adaptation.kind = scenario.kind;
    cfg.adaptation.degradation_factor = 6.0;
    cfg.adaptation.os_hours = 1.0;
    const core::FtsResult plan = core::ft_schedule(ts, cfg);
    if (!plan.success) continue;
    ++simulated;

    double x = 1.0;
    if (plan.n_adapt < plan.n_hi) {
      const auto vd = mcs::analyze_edf_vd(plan.converted);
      ASSERT_TRUE(vd.schedulable);
      // n' = 0 yields x = 0 (no LO-mode HI budget at all); the simulator
      // needs a positive virtual deadline, and with the switch firing at
      // the first HI release its exact value is immaterial.
      x = std::clamp(vd.x, 0.001, 1.0);
    }
    sim::SimConfig sim_cfg;
    sim_cfg.policy = sim::PolicyKind::kEdfVd;
    sim_cfg.adaptation = scenario.kind;
    sim_cfg.degradation_factor = 6.0;
    sim_cfg.horizon = sim::kTicksPerHour / 20;  // 3 simulated minutes
    sim_cfg.seed = scenario.seed + static_cast<std::uint64_t>(attempt);
    sim::Simulator simulator(
        sim::build_sim_tasks(ts, plan.n_hi, plan.n_lo, plan.n_adapt, x),
        sim_cfg);
    const sim::SimStats stats = simulator.run();

    for (std::size_t i = 0; i < ts.size(); ++i) {
      // HI tasks must never miss. LO tasks: under killing they are
      // killed, not late; under degradation the accepted analysis covers
      // their stretched arrivals too.
      EXPECT_EQ(stats.per_task[i].deadline_misses, 0u)
          << "task " << ts[i].name << " (U = " << scenario.utilization
          << ", kind = " << static_cast<int>(scenario.kind) << ")";
    }
  }
  // The scenarios are tuned so acceptance happens at these utilizations.
  EXPECT_GT(simulated, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AcceptedSystems,
    ::testing::Values(
        Scenario{0.3, mcs::AdaptationKind::kKilling, 101},
        Scenario{0.5, mcs::AdaptationKind::kKilling, 202},
        Scenario{0.7, mcs::AdaptationKind::kKilling, 303},
        Scenario{0.3, mcs::AdaptationKind::kDegradation, 404},
        Scenario{0.5, mcs::AdaptationKind::kDegradation, 505},
        Scenario{0.7, mcs::AdaptationKind::kDegradation, 606}));

}  // namespace
}  // namespace ftmc
