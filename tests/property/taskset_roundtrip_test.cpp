/// Property test: the plain-text task-set format round-trips. For any
/// task set ts, parse(emit(ts)) reproduces every field exactly (emission
/// uses 17 significant digits, which is lossless for IEEE doubles), and
/// emission is a fixed point: emit(parse(emit(ts))) == emit(ts).
#include <gtest/gtest.h>

#include <string>

#include "ftmc/fms/fms.hpp"
#include "ftmc/io/taskset_io.hpp"
#include "ftmc/taskgen/generator.hpp"

namespace ftmc::io {
namespace {

void expect_round_trip(const core::FtTaskSet& ts) {
  const std::string text = task_set_to_string(ts);
  const core::FtTaskSet parsed = parse_task_set_string(text);

  EXPECT_EQ(parsed.mapping().hi, ts.mapping().hi);
  EXPECT_EQ(parsed.mapping().lo, ts.mapping().lo);
  ASSERT_EQ(parsed.tasks().size(), ts.tasks().size());
  for (std::size_t i = 0; i < ts.tasks().size(); ++i) {
    const core::FtTask& a = ts.tasks()[i];
    const core::FtTask& b = parsed.tasks()[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.period, a.period) << a.name;      // exact: 17 digits
    EXPECT_EQ(b.deadline, a.deadline) << a.name;
    EXPECT_EQ(b.wcet, a.wcet) << a.name;
    EXPECT_EQ(b.dal, a.dal) << a.name;
    EXPECT_EQ(b.failure_prob, a.failure_prob) << a.name;
  }

  // Emission is a fixed point of parse-then-emit.
  EXPECT_EQ(task_set_to_string(parsed), text);
}

TEST(TasksetRoundTrip, CanonicalFmsInstance) {
  expect_round_trip(fms::canonical_fms_instance());
}

TEST(TasksetRoundTrip, RandomFmsInstances) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 25; ++i) {
    expect_round_trip(fms::random_fms_instance(rng));
  }
}

TEST(TasksetRoundTrip, GeneratedSetsAcrossTheFig3Grid) {
  // Sweep the Appendix C generator across the Fig. 3 axes; irrational-ish
  // doubles (utilization-derived WCETs) exercise the full 17-digit path.
  taskgen::Rng rng(20140601);
  for (const double u : {0.2, 0.5, 0.8, 1.0}) {
    for (const double f : {1e-3, 1e-5}) {
      taskgen::GeneratorParams params;
      params.target_utilization = u;
      params.failure_prob = f;
      for (int i = 0; i < 10; ++i) {
        expect_round_trip(taskgen::generate_task_set(params, rng));
      }
    }
  }
}

TEST(TasksetRoundTrip, LogUniformPeriodsAndExplicitDeadlines) {
  taskgen::GeneratorParams params;
  params.period_distribution = taskgen::PeriodDistribution::kLogUniform;
  params.target_utilization = 0.6;
  taskgen::Rng rng(42);
  for (int i = 0; i < 10; ++i) {
    core::FtTaskSet ts = taskgen::generate_task_set(params, rng);
    // Constrain some deadlines so D != T is exercised too.
    std::vector<core::FtTask> tasks(ts.tasks().begin(), ts.tasks().end());
    for (std::size_t k = 0; k < tasks.size(); k += 2) {
      tasks[k].deadline = tasks[k].deadline * 0.75;
    }
    expect_round_trip(core::FtTaskSet(tasks, ts.mapping()));
  }
}

}  // namespace
}  // namespace ftmc::io
