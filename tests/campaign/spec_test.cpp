#include "ftmc/campaign/spec.hpp"

#include <gtest/gtest.h>

#include "ftmc/exec/seed.hpp"
#include "ftmc/io/parse_error.hpp"

namespace ftmc::campaign {
namespace {

// A minimal but complete spec text used as the base of most tests.
constexpr const char* kMinimalSpec = R"({
  "name": "smoke",
  "schedulers": ["edf_vd_killing", "edf_vd_degradation"],
  "failure_probs": [1e-3, 1e-5],
  "utilizations": [0.2, 0.5, 0.8]
})";

TEST(CampaignSpecParse, MinimalSpecGetsPaperDefaults) {
  const CampaignSpec spec = parse_spec_text(kMinimalSpec);
  EXPECT_EQ(spec.name, "smoke");
  EXPECT_EQ(spec.title, "smoke");  // defaults to name
  ASSERT_EQ(spec.schedulers.size(), 2u);
  EXPECT_EQ(spec.schedulers[0], Scheduler::kEdfVdKilling);
  EXPECT_EQ(spec.schedulers[1], Scheduler::kEdfVdDegradation);
  EXPECT_EQ(spec.mapping.hi, Dal::B);
  EXPECT_EQ(spec.mapping.lo, Dal::D);
  EXPECT_DOUBLE_EQ(spec.degradation_factor, 6.0);
  EXPECT_DOUBLE_EQ(spec.os_hours, 1.0);
  EXPECT_EQ(spec.sets_per_point, 500);
  EXPECT_EQ(spec.seed, 20140601u);
  EXPECT_DOUBLE_EQ(spec.generator.u_min, 0.01);
  EXPECT_DOUBLE_EQ(spec.generator.u_max, 0.2);
  EXPECT_DOUBLE_EQ(spec.generator.period_min_ms, 200.0);
  EXPECT_DOUBLE_EQ(spec.generator.period_max_ms, 2000.0);
  EXPECT_DOUBLE_EQ(spec.generator.p_hi, 0.2);
}

TEST(CampaignSpecParse, RejectsUnknownTopLevelKey) {
  EXPECT_THROW(parse_spec_text(R"({
    "name": "x", "schedulers": ["edf_vd_killing"],
    "failure_probs": [1e-5], "utilizations": [0.5],
    "sets_per_pont": 10
  })"),
               io::ParseError);  // typo'd key fails loudly
}

TEST(CampaignSpecParse, RejectsUnknownGeneratorKey) {
  EXPECT_THROW(parse_spec_text(R"({
    "name": "x", "schedulers": ["edf_vd_killing"],
    "failure_probs": [1e-5], "utilizations": [0.5],
    "generator": {"umin": 0.01}
  })"),
               io::ParseError);
}

TEST(CampaignSpecParse, RejectsUnknownScheduler) {
  EXPECT_THROW(parse_spec_text(R"({
    "name": "x", "schedulers": ["edf"],
    "failure_probs": [1e-5], "utilizations": [0.5]
  })"),
               io::ParseError);
}

TEST(CampaignSpecParse, RejectsInvalidAxes) {
  // Empty grid axes.
  EXPECT_THROW(parse_spec_text(R"({
    "name": "x", "schedulers": ["edf_vd_killing"],
    "failure_probs": [], "utilizations": [0.5]
  })"),
               io::ParseError);
  // Probability outside (0, 1).
  EXPECT_THROW(parse_spec_text(R"({
    "name": "x", "schedulers": ["edf_vd_killing"],
    "failure_probs": [1.5], "utilizations": [0.5]
  })"),
               io::ParseError);
  // Bad name (used in file names).
  EXPECT_THROW(parse_spec_text(R"({
    "name": "a/b", "schedulers": ["edf_vd_killing"],
    "failure_probs": [1e-5], "utilizations": [0.5]
  })"),
               io::ParseError);
  // sets_per_point must be >= 1.
  EXPECT_THROW(parse_spec_text(R"({
    "name": "x", "schedulers": ["edf_vd_killing"],
    "failure_probs": [1e-5], "utilizations": [0.5],
    "sets_per_point": 0
  })"),
               io::ParseError);
}

TEST(CampaignSpecParse, SchedulerNamesRoundTrip) {
  for (const Scheduler s :
       {Scheduler::kEdfVdKilling, Scheduler::kEdfVdDegradation,
        Scheduler::kAmcRtb, Scheduler::kAmcRtbOpa, Scheduler::kMcDbf}) {
    EXPECT_EQ(parse_scheduler(to_string(s)), s);
  }
  EXPECT_EQ(parse_scheduler("nope"), std::nullopt);
}

TEST(CampaignSpecJson, CanonicalEmissionRoundTrips) {
  CampaignSpec spec = parse_spec_text(kMinimalSpec);
  spec.title = "Fig. 3 smoke";
  spec.seed = 18446744073709551615ULL;  // uint64 max: JSON-double unsafe
  spec.sets_per_point = 7;
  spec.generator.period_distribution =
      taskgen::PeriodDistribution::kLogUniform;

  const CampaignSpec again = parse_spec_text(spec_to_json(spec));
  EXPECT_EQ(again.name, spec.name);
  EXPECT_EQ(again.title, spec.title);
  EXPECT_EQ(again.schedulers, spec.schedulers);
  EXPECT_EQ(again.mapping.hi, spec.mapping.hi);
  EXPECT_EQ(again.mapping.lo, spec.mapping.lo);
  EXPECT_EQ(again.seed, spec.seed);
  EXPECT_EQ(again.sets_per_point, spec.sets_per_point);
  EXPECT_EQ(again.generator.period_distribution,
            spec.generator.period_distribution);
  EXPECT_EQ(again.failure_probs, spec.failure_probs);
  EXPECT_EQ(again.utilizations, spec.utilizations);
  // Canonical form is a fixed point: emit(parse(emit(s))) == emit(s).
  EXPECT_EQ(spec_to_json(again), spec_to_json(spec));
}

TEST(CampaignExpand, OrderIsSchedulerMajorAndSeedsMatchHistoricalFig3) {
  const CampaignSpec spec = parse_spec_text(kMinimalSpec);
  const std::vector<CellSpec> cells = expand_cells(spec);
  const std::size_t n_f = spec.failure_probs.size();
  const std::size_t n_u = spec.utilizations.size();
  ASSERT_EQ(cells.size(), spec.schedulers.size() * n_f * n_u);

  std::size_t i = 0;
  for (std::size_t si = 0; si < spec.schedulers.size(); ++si) {
    for (std::size_t fi = 0; fi < n_f; ++fi) {
      for (std::size_t ui = 0; ui < n_u; ++ui, ++i) {
        const CellSpec& cell = cells[i];
        EXPECT_EQ(cell.index, i);
        EXPECT_EQ(cell.scheduler, spec.schedulers[si]);
        EXPECT_DOUBLE_EQ(cell.failure_prob, spec.failure_probs[fi]);
        EXPECT_DOUBLE_EQ(cell.utilization, spec.utilizations[ui]);
        // The seed is a pure function of the (f, U) grid position —
        // independent of the scheduler, so every scheduler scores the
        // same task sets, and identical to the historical fig3 driver.
        EXPECT_EQ(cell.seed, exec::derive_seed(spec.seed, fi * n_u + ui));
      }
    }
  }
  // Paired comparison: both schedulers see identical seeds.
  for (std::size_t k = 0; k < n_f * n_u; ++k) {
    EXPECT_EQ(cells[k].seed, cells[n_f * n_u + k].seed);
  }
}

TEST(CampaignHash, StableAndSensitiveToResultRelevantFields) {
  const CampaignSpec spec = parse_spec_text(kMinimalSpec);
  const std::vector<CellSpec> cells = expand_cells(spec);

  // Deterministic: same cell, same hash; 16 lowercase hex digits.
  const std::string h = cell_hash(cells[0]);
  EXPECT_EQ(h, cell_hash(cells[0]));
  EXPECT_EQ(h.size(), 16u);
  EXPECT_EQ(h.find_first_not_of("0123456789abcdef"), std::string::npos);

  // Every cell of the grid hashes differently.
  for (std::size_t a = 0; a < cells.size(); ++a) {
    for (std::size_t b = a + 1; b < cells.size(); ++b) {
      EXPECT_NE(cell_hash(cells[a]), cell_hash(cells[b]))
          << "cells " << a << " and " << b << " collide";
    }
  }

  // Result-relevant edits change the hash...
  CellSpec edited = cells[0];
  edited.sets_per_point += 1;
  EXPECT_NE(cell_hash(edited), h);
  edited = cells[0];
  edited.seed += 1;
  EXPECT_NE(cell_hash(edited), h);
}

TEST(CampaignHash, DegradationFactorIgnoredForKillingSchedulers) {
  const CampaignSpec spec = parse_spec_text(kMinimalSpec);
  const std::vector<CellSpec> cells = expand_cells(spec);
  const std::size_t half = cells.size() / 2;

  // Killing cells do not depend on d_f: editing it keeps their hash
  // (cache hit), while degradation cells re-run.
  CellSpec killing = cells[0];
  ASSERT_EQ(killing.scheduler, Scheduler::kEdfVdKilling);
  CellSpec degradation = cells[half];
  ASSERT_EQ(degradation.scheduler, Scheduler::kEdfVdDegradation);

  const std::string killing_before = cell_hash(killing);
  const std::string degradation_before = cell_hash(degradation);
  killing.degradation_factor = 2.0;
  degradation.degradation_factor = 2.0;
  EXPECT_EQ(cell_hash(killing), killing_before);
  EXPECT_NE(cell_hash(degradation), degradation_before);
}

TEST(CampaignHash, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace ftmc::campaign
