#include "ftmc/campaign/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "ftmc/io/parse_error.hpp"

namespace ftmc::campaign {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the system temp dir.
class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("ftmc_journal_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* leaf) const {
    return (dir_ / leaf).string();
  }

  fs::path dir_;
};

TEST_F(JournalTest, RecordJsonRoundTrips) {
  const CellRecord record{"00c0ffee00c0ffee", 17, 23};
  const CellRecord again = record_from_json(record_to_json(record));
  EXPECT_EQ(again.hash, record.hash);
  EXPECT_EQ(again.accept_without, record.accept_without);
  EXPECT_EQ(again.accept_with, record.accept_with);
}

TEST_F(JournalTest, RecordParserRejectsGarbage) {
  EXPECT_THROW(record_from_json("not json"), io::ParseError);
  EXPECT_THROW(record_from_json("{\"hash\":\"short\",\"accept_without\":0,"
                                "\"accept_with\":0}"),
               io::ParseError);  // hash must be 16 hex digits
}

TEST_F(JournalTest, AppendThenLoadReplaysAllRecords) {
  const std::string journal_path = path("journal.jsonl");
  {
    Journal journal(journal_path);
    journal.append({"0000000000000001", 1, 2});
    journal.append({"0000000000000002", 3, 4});
  }
  // Reopening appends, it does not truncate.
  {
    Journal journal(journal_path);
    journal.append({"0000000000000003", 5, 6});
  }
  const Journal::LoadResult loaded = Journal::load(journal_path);
  EXPECT_EQ(loaded.bad_lines, 0u);
  ASSERT_EQ(loaded.records.size(), 3u);
  EXPECT_EQ(loaded.records[2].hash, "0000000000000003");
  EXPECT_EQ(loaded.records[2].accept_without, 5);
  EXPECT_EQ(loaded.records[2].accept_with, 6);
}

TEST_F(JournalTest, MissingFileIsEmptyJournal) {
  const Journal::LoadResult loaded = Journal::load(path("absent.jsonl"));
  EXPECT_TRUE(loaded.records.empty());
  EXPECT_EQ(loaded.bad_lines, 0u);
}

TEST_F(JournalTest, ToleratesTornTrailingLine) {
  const std::string journal_path = path("journal.jsonl");
  {
    Journal journal(journal_path);
    journal.append({"0000000000000001", 1, 2});
  }
  // Simulate a crash mid-append: a truncated line with no newline.
  {
    std::ofstream out(journal_path, std::ios::app);
    out << "{\"hash\":\"00000000000";  // torn
  }
  const Journal::LoadResult loaded = Journal::load(journal_path);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].hash, "0000000000000001");
  EXPECT_EQ(loaded.bad_lines, 1u);

  // Resume semantics: appending after the torn line keeps the journal
  // loadable — the torn line stays quarantined, new records are read.
  {
    Journal journal(journal_path);
    journal.append({"0000000000000002", 3, 4});
  }
  const Journal::LoadResult after = Journal::load(journal_path);
  ASSERT_EQ(after.records.size(), 2u);
  EXPECT_EQ(after.records[1].hash, "0000000000000002");
}

TEST_F(JournalTest, AtomicWriteReplacesContentAndLeavesNoTmpFile) {
  const std::string target = path("spec.json");
  write_file_atomic(target, "first");
  EXPECT_EQ(read_file(target), "first");
  write_file_atomic(target, "second");
  EXPECT_EQ(read_file(target), "second");
  // The tmp staging file must not survive the rename.
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(JournalTest, ReadFileThrowsOnMissingFile) {
  EXPECT_THROW((void)read_file(path("nope.json")), std::runtime_error);
}

TEST_F(JournalTest, AtomicWriteHandlesLargeAndBinaryPayloads) {
  // The POSIX write loop must survive partial writes and NUL bytes.
  std::string payload;
  payload.reserve(5u << 20);
  for (int i = 0; payload.size() < (5u << 20); ++i) {
    payload += static_cast<char>(i & 0xff);
  }
  const std::string target = path("blob.bin");
  write_file_atomic(target, payload);
  EXPECT_EQ(read_file(target), payload);
}

TEST_F(JournalTest, AtomicWriteWorksForRelativePathsInCwd) {
  // parent_dir("spec.json") must fsync "." — exercise the bare-filename
  // branch of the directory-fsync path.
  const fs::path previous = fs::current_path();
  fs::current_path(dir_);
  write_file_atomic("bare.json", "x");
  EXPECT_EQ(read_file("bare.json"), "x");
  fs::current_path(previous);
}

TEST_F(JournalTest, AtomicWriteFailsLoudlyOnMissingDirectory) {
  // No silent data loss: an unreachable target throws instead of
  // "succeeding" without a durable file.
  EXPECT_THROW(
      write_file_atomic(path("no/such/dir/spec.json"), "content"),
      std::runtime_error);
}

}  // namespace
}  // namespace ftmc::campaign
