#include "ftmc/campaign/runner.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "ftmc/campaign/journal.hpp"
#include "ftmc/core/ft_scheduler.hpp"
#include "ftmc/exec/seed.hpp"
#include "ftmc/obs/registry.hpp"
#include "ftmc/taskgen/generator.hpp"

namespace ftmc::campaign {
namespace {

namespace fs = std::filesystem;

/// Small grid so the full campaign runs in well under a second.
[[nodiscard]] CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.name = "runner_test";
  spec.title = "runner test";
  spec.schedulers = {Scheduler::kEdfVdKilling};
  spec.failure_probs = {1e-3, 1e-5};
  spec.utilizations = {0.3, 0.5, 0.7};
  spec.sets_per_point = 30;
  spec.seed = 20140601;
  return spec;
}

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("ftmc_runner_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string dir(const char* leaf) const {
    return (dir_ / leaf).string();
  }

  fs::path dir_;
};

/// Inline re-statement of the historical bench/common Fig. 3 point
/// driver (pre-campaign). run_cell must reproduce it bit for bit — this
/// is the acceptance criterion that fig3a-d numbers are unchanged.
[[nodiscard]] CellCounts reference_fig3_point(const CampaignSpec& spec,
                                              std::size_t point_index,
                                              double failure_prob,
                                              double utilization) {
  taskgen::GeneratorParams params;
  params.u_min = spec.generator.u_min;
  params.u_max = spec.generator.u_max;
  params.period_min = spec.generator.period_min_ms;
  params.period_max = spec.generator.period_max_ms;
  params.period_distribution = spec.generator.period_distribution;
  params.p_hi = spec.generator.p_hi;
  params.target_utilization = utilization;
  params.failure_prob = failure_prob;
  params.mapping = spec.mapping;
  taskgen::Rng rng(exec::derive_seed(spec.seed, point_index));

  core::FtsConfig fts;
  fts.adaptation.kind = adaptation_of(spec.schedulers[0]);
  fts.adaptation.degradation_factor = spec.degradation_factor;
  fts.adaptation.os_hours = spec.os_hours;
  fts.prefer_no_adaptation = true;

  CellCounts counts;
  for (int i = 0; i < spec.sets_per_point; ++i) {
    const core::FtTaskSet ts = taskgen::generate_task_set(params, rng);
    const core::FtsResult r = core::ft_schedule(ts, fts);
    if (r.feasible_without_adaptation) ++counts.accept_without;
    if (r.success) ++counts.accept_with;
  }
  return counts;
}

TEST_F(RunnerTest, BitIdenticalToHistoricalFig3Driver) {
  const CampaignSpec spec = small_spec();
  const std::size_t n_u = spec.utilizations.size();

  RunnerOptions options;
  options.threads = 1;
  const CampaignResult result = run_campaign(spec, options);
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.cells.size(),
            spec.failure_probs.size() * n_u);

  for (std::size_t fi = 0; fi < spec.failure_probs.size(); ++fi) {
    for (std::size_t ui = 0; ui < n_u; ++ui) {
      const std::size_t point = fi * n_u + ui;
      const CellCounts expected = reference_fig3_point(
          spec, point, spec.failure_probs[fi], spec.utilizations[ui]);
      const CellOutcome& outcome = result.cells[point];
      EXPECT_EQ(outcome.counts.accept_without, expected.accept_without)
          << "point " << point;
      EXPECT_EQ(outcome.counts.accept_with, expected.accept_with)
          << "point " << point;
    }
  }
}

TEST_F(RunnerTest, ResultsAreThreadCountInvariant) {
  const CampaignSpec spec = small_spec();
  RunnerOptions serial;
  serial.threads = 1;
  RunnerOptions parallel;
  parallel.threads = 4;
  const CampaignResult a = run_campaign(spec, serial);
  const CampaignResult b = run_campaign(spec, parallel);
  EXPECT_EQ(results_to_json(a), results_to_json(b));
}

TEST_F(RunnerTest, InterruptedThenResumedRunIsByteIdentical) {
  const CampaignSpec spec = small_spec();

  // Crash drill: stop after 2 newly computed cells (journal then looks
  // exactly like a crash at a cell boundary), then resume.
  RunnerOptions interrupted;
  interrupted.threads = 1;
  interrupted.dir = dir("interrupted");
  interrupted.max_cells = 2;
  const CampaignResult partial = run_campaign(spec, interrupted);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.cells_run, 2u);
  EXPECT_FALSE(fs::exists(dir("interrupted") + std::string("/results.json")))
      << "merged results must not exist until every cell has a result";

  RunnerOptions resume;
  resume.threads = 2;  // resuming with different parallelism is fine
  const CampaignResult resumed =
      resume_campaign(interrupted.dir, resume);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.cache_hits, 2u);
  EXPECT_EQ(resumed.cells_run, resumed.cells_total - 2);

  // Uninterrupted control run in a second directory.
  RunnerOptions fresh;
  fresh.threads = 1;
  fresh.dir = dir("fresh");
  const CampaignResult control = run_campaign(spec, fresh);
  ASSERT_TRUE(control.complete);

  EXPECT_EQ(read_file(resumed.results_path),
            read_file(control.results_path))
      << "resumed results.json must be byte-identical to an "
         "uninterrupted run";
}

TEST_F(RunnerTest, CacheHitsSkipRecomputationObservedViaMetrics) {
  const CampaignSpec spec = small_spec();
  obs::Registry& registry = obs::Registry::global();
  const bool was_enabled = registry.is_enabled();
  registry.enable(true);
  const obs::Counter cells_run = registry.counter("campaign.cells_run");
  const obs::Counter cache_hits = registry.counter("campaign.cache_hits");

  RunnerOptions options;
  options.threads = 1;
  options.dir = dir("cache");

  const std::uint64_t run0 = cells_run.value();
  const std::uint64_t hit0 = cache_hits.value();
  const CampaignResult first = run_campaign(spec, options);
  ASSERT_TRUE(first.complete);
  EXPECT_EQ(cells_run.value() - run0, first.cells_total);
  EXPECT_EQ(cache_hits.value() - hit0, 0u);

  // Second run over the same directory: everything replays from the
  // journal, nothing is recomputed.
  const CampaignResult second = run_campaign(spec, options);
  ASSERT_TRUE(second.complete);
  EXPECT_EQ(second.cells_run, 0u);
  EXPECT_EQ(second.cache_hits, second.cells_total);
  EXPECT_EQ(cells_run.value() - run0, first.cells_total)
      << "cache hits must not recompute cells";
  EXPECT_EQ(cache_hits.value() - hit0, second.cells_total);
  for (const CellOutcome& outcome : second.cells) {
    EXPECT_TRUE(outcome.from_cache);
  }
  EXPECT_EQ(results_to_json(first), results_to_json(second));

  registry.enable(was_enabled);
}

TEST_F(RunnerTest, EditedAxisRerunsOnlyChangedCells) {
  CampaignSpec spec = small_spec();
  RunnerOptions options;
  options.threads = 1;
  options.dir = dir("edit");

  const CampaignResult before = run_campaign(spec, options);
  ASSERT_TRUE(before.complete);

  // Append one failure probability: every existing (f, U) pair keeps
  // its grid index (f is the major axis), so the old grid is served
  // from the cache and only the new row is computed.
  spec.failure_probs.push_back(1e-4);
  const CampaignResult after = run_campaign(spec, options);
  ASSERT_TRUE(after.complete);
  EXPECT_EQ(after.cache_hits, before.cells_total);
  EXPECT_EQ(after.cells_run, spec.utilizations.size());

  // Appending a *utilization* instead shifts the grid indices — and
  // therefore the derived seeds — of every later row (the historical
  // fig3 derivation is index-based). Those cells genuinely change, so
  // the cache correctly re-runs them: only the first failure-prob row,
  // whose indices are unchanged, hits.
  CampaignSpec widened = small_spec();
  widened.utilizations.push_back(0.9);
  const CampaignResult shifted = run_campaign(widened, options);
  ASSERT_TRUE(shifted.complete);
  EXPECT_EQ(shifted.cache_hits, small_spec().utilizations.size());
}

TEST_F(RunnerTest, InMemoryRunWritesNothing) {
  const CampaignSpec spec = small_spec();
  RunnerOptions options;
  options.threads = 1;  // no dir
  const CampaignResult result = run_campaign(spec, options);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.results_path.empty());
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(RunnerTest, RejectsInvalidSpec) {
  CampaignSpec spec = small_spec();
  spec.utilizations.clear();
  RunnerOptions options;
  EXPECT_THROW((void)run_campaign(spec, options), io::ParseError);
}

}  // namespace
}  // namespace ftmc::campaign
