/// Strict CLI/env parsing of the bench binaries: unknown flags, missing
/// values and malformed numbers are errors (exit non-zero), never
/// silently ignored input. Registered from bench/CMakeLists.txt because
/// it links ftmc_bench_common.
#include "common/experiment_util.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

namespace ftmc::bench {
namespace {

/// argv builder ({"prog", flags...}; keeps storage alive).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "bench_test");
    for (std::string& s : strings_) pointers_.push_back(s.data());
  }
  [[nodiscard]] int argc() const {
    return static_cast<int>(pointers_.size());
  }
  [[nodiscard]] char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

/// Scoped environment override (unset when `value` is nullopt).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, std::optional<std::string> value)
      : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    if (value) {
      ::setenv(name, value->c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(BenchOverridesParse, ParsesAllKnownFlags) {
  ScopedEnv no_sets("FTMC_BENCH_SETS", std::nullopt);
  ScopedEnv no_threads("FTMC_BENCH_THREADS", std::nullopt);
  Argv argv({"--sets", "25", "--seed", "18446744073709551615", "--threads",
             "4", "--progress"});
  const Expected<BenchOverrides> parsed =
      parse_bench_overrides(argv.argc(), argv.argv());
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed->sets, 25);
  EXPECT_EQ(parsed->seed, 18446744073709551615ULL);
  EXPECT_EQ(parsed->threads, 4);
  EXPECT_TRUE(parsed->progress);
}

TEST(BenchOverridesParse, CampaignFlagsAreOptIn) {
  ScopedEnv no_sets("FTMC_BENCH_SETS", std::nullopt);
  ScopedEnv no_threads("FTMC_BENCH_THREADS", std::nullopt);
  Argv spec_flag({"--spec", "custom.json", "--out", "runs/a"});
  const auto rejected =
      parse_bench_overrides(spec_flag.argc(), spec_flag.argv());
  EXPECT_FALSE(rejected.ok());

  Argv again({"--spec", "custom.json", "--out", "runs/a"});
  const auto allowed = parse_bench_overrides(again.argc(), again.argv(),
                                             /*allow_campaign_flags=*/true);
  ASSERT_TRUE(allowed.ok()) << allowed.error();
  EXPECT_EQ(allowed->spec, "custom.json");
  EXPECT_EQ(allowed->out, "runs/a");
}

TEST(BenchOverridesParse, RejectsUnknownFlag) {
  Argv argv({"--stes", "25"});  // typo
  const auto parsed = parse_bench_overrides(argv.argc(), argv.argv());
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().find("--stes"), std::string::npos);
}

TEST(BenchOverridesParse, RejectsMissingAndMalformedValues) {
  Argv missing({"--sets"});
  EXPECT_FALSE(parse_bench_overrides(missing.argc(), missing.argv()).ok());

  Argv trailing({"--sets", "25x"});
  EXPECT_FALSE(
      parse_bench_overrides(trailing.argc(), trailing.argv()).ok());

  Argv negative({"--sets", "0"});
  EXPECT_FALSE(
      parse_bench_overrides(negative.argc(), negative.argv()).ok());

  Argv overflow({"--seed", "99999999999999999999"});
  EXPECT_FALSE(
      parse_bench_overrides(overflow.argc(), overflow.argv()).ok());

  Argv bad_threads({"--threads", "many"});
  EXPECT_FALSE(
      parse_bench_overrides(bad_threads.argc(), bad_threads.argv()).ok());
}

TEST(BenchApplyOverrides, CliValuesReachTheConfig) {
  ScopedEnv no_sets("FTMC_BENCH_SETS", std::nullopt);
  ScopedEnv no_threads("FTMC_BENCH_THREADS", std::nullopt);
  Argv argv({"--sets", "7", "--seed", "99", "--threads", "3"});
  const Expected<Fig3Config> config =
      apply_cli_overrides(Fig3Config{}, argv.argc(), argv.argv());
  ASSERT_TRUE(config.ok()) << config.error();
  EXPECT_EQ(config->sets_per_point, 7);
  EXPECT_EQ(config->seed, 99u);
  EXPECT_EQ(config->threads, 3);
}

TEST(BenchApplyOverrides, EnvironmentWinsOverCli) {
  // Historical CI contract: FTMC_BENCH_SETS/THREADS override the CLI.
  ScopedEnv sets("FTMC_BENCH_SETS", "11");
  ScopedEnv threads("FTMC_BENCH_THREADS", "2");
  Argv argv({"--sets", "7", "--threads", "5"});
  const Expected<Fig3Config> config =
      apply_cli_overrides(Fig3Config{}, argv.argc(), argv.argv());
  ASSERT_TRUE(config.ok()) << config.error();
  EXPECT_EQ(config->sets_per_point, 11);
  EXPECT_EQ(config->threads, 2);
}

TEST(BenchApplyOverrides, MalformedEnvironmentIsAnErrorNotADefault) {
  ScopedEnv sets("FTMC_BENCH_SETS", "lots");
  ScopedEnv no_threads("FTMC_BENCH_THREADS", std::nullopt);
  Argv argv({});
  const Expected<Fig3Config> config =
      apply_cli_overrides(Fig3Config{}, argv.argc(), argv.argv());
  ASSERT_FALSE(config.ok());
  EXPECT_NE(config.error().find("FTMC_BENCH_SETS"), std::string::npos);
}

TEST(BenchApplyOverrides, UnknownFlagPropagatesAsError) {
  ScopedEnv no_sets("FTMC_BENCH_SETS", std::nullopt);
  ScopedEnv no_threads("FTMC_BENCH_THREADS", std::nullopt);
  Argv argv({"--verbose"});
  EXPECT_FALSE(
      apply_cli_overrides(Fig3Config{}, argv.argc(), argv.argv()).ok());
}

}  // namespace
}  // namespace ftmc::bench
