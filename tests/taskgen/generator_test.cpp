#include "ftmc/taskgen/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ftmc/common/contracts.hpp"

namespace ftmc::taskgen {
namespace {

TEST(GeneratorParams, DefaultsAreThePaperSettings) {
  const GeneratorParams p;
  EXPECT_DOUBLE_EQ(p.u_min, 0.01);
  EXPECT_DOUBLE_EQ(p.u_max, 0.2);
  EXPECT_DOUBLE_EQ(p.period_min, 200.0);
  EXPECT_DOUBLE_EQ(p.period_max, 2000.0);
  EXPECT_DOUBLE_EQ(p.p_hi, 0.2);
  EXPECT_NO_THROW(p.validate());
}

TEST(GeneratorParams, ValidateRejectsBadRanges) {
  GeneratorParams p;
  p.u_min = 0.3;
  p.u_max = 0.2;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = GeneratorParams{};
  p.period_min = 0.0;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = GeneratorParams{};
  p.p_hi = 1.5;
  EXPECT_THROW(p.validate(), ContractViolation);
  p = GeneratorParams{};
  p.failure_prob = 1.0;
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(Generator, HitsTargetUtilizationExactly) {
  GeneratorParams p;
  p.target_utilization = 0.6;
  Rng rng(123);
  for (int rep = 0; rep < 50; ++rep) {
    const auto ts = generate_task_set(p, rng);
    EXPECT_NEAR(ts.total_utilization(), 0.6, p.min_fill_utilization + 1e-9);
    EXPECT_LE(ts.total_utilization(), 0.6 + 1e-9);
  }
}

TEST(Generator, TaskParametersWithinRanges) {
  GeneratorParams p;
  p.target_utilization = 0.8;
  Rng rng(7);
  const auto ts = generate_task_set(p, rng);
  for (const auto& task : ts.tasks()) {
    EXPECT_GE(task.period, p.period_min);
    EXPECT_LE(task.period, p.period_max);
    EXPECT_TRUE(task.implicit_deadline());
    // Utilization within [u-, u+] except the clipped final task (below).
    EXPECT_LE(task.utilization(), p.u_max + 1e-12);
    EXPECT_GT(task.utilization(), 0.0);
    EXPECT_DOUBLE_EQ(task.failure_prob, p.failure_prob);
  }
}

TEST(Generator, BothLevelsPresentWhenRequested) {
  GeneratorParams p;
  p.target_utilization = 0.4;
  Rng rng(99);
  for (int rep = 0; rep < 100; ++rep) {
    const auto ts = generate_task_set(p, rng);
    EXPECT_GT(ts.count(CritLevel::HI), 0u);
    EXPECT_GT(ts.count(CritLevel::LO), 0u);
  }
}

TEST(Generator, MappingApplied) {
  GeneratorParams p;
  p.mapping = {Dal::B, Dal::D};
  Rng rng(5);
  const auto ts = generate_task_set(p, rng);
  for (const auto& task : ts.tasks()) {
    EXPECT_TRUE(task.dal == Dal::B || task.dal == Dal::D);
  }
}

TEST(Generator, DeterministicForFixedSeed) {
  GeneratorParams p;
  Rng a(2024), b(2024);
  const auto ts_a = generate_task_set(p, a);
  const auto ts_b = generate_task_set(p, b);
  ASSERT_EQ(ts_a.size(), ts_b.size());
  for (std::size_t i = 0; i < ts_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(ts_a[i].period, ts_b[i].period);
    EXPECT_DOUBLE_EQ(ts_a[i].wcet, ts_b[i].wcet);
    EXPECT_EQ(ts_a[i].dal, ts_b[i].dal);
  }
}

TEST(Generator, HiFractionRoughlyMatchesPHi) {
  GeneratorParams p;
  p.target_utilization = 1.0;
  p.ensure_both_levels = false;
  Rng rng(11);
  std::size_t hi = 0, total = 0;
  for (int rep = 0; rep < 400; ++rep) {
    const auto ts = generate_task_set(p, rng);
    hi += ts.count(CritLevel::HI);
    total += ts.size();
  }
  const double frac = static_cast<double>(hi) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.2, 0.03);  // ~4000 draws: 3 sigma ~ 0.02
}

TEST(Generator, LogUniformPeriodsSkewTowardShort) {
  // Over [200, 2000] the uniform draw has mean 1100; the log-uniform
  // draw has mean (T+ - T-)/ln(T+/T-) ~ 782. Separating the two sample
  // means at 4 sigma needs only a few hundred tasks.
  GeneratorParams uniform;
  uniform.target_utilization = 2.0;
  uniform.ensure_both_levels = false;
  GeneratorParams log_uniform = uniform;
  log_uniform.period_distribution = PeriodDistribution::kLogUniform;

  const auto mean_period = [](const GeneratorParams& p, std::uint64_t seed) {
    Rng rng(seed);
    double sum = 0.0;
    std::size_t count = 0;
    for (int rep = 0; rep < 40; ++rep) {
      const auto ts = generate_task_set(p, rng);
      for (const auto& t : ts.tasks()) sum += t.period;
      count += ts.size();
    }
    return sum / static_cast<double>(count);
  };
  const double mu_uniform = mean_period(uniform, 5);
  const double mu_log = mean_period(log_uniform, 5);
  EXPECT_GT(mu_uniform, 1000.0);
  EXPECT_LT(mu_log, 900.0);
}

TEST(Generator, LogUniformStaysWithinRange) {
  GeneratorParams p;
  p.period_distribution = PeriodDistribution::kLogUniform;
  p.target_utilization = 1.0;
  Rng rng(77);
  const auto ts = generate_task_set(p, rng);
  for (const auto& t : ts.tasks()) {
    EXPECT_GE(t.period, p.period_min);
    EXPECT_LE(t.period, p.period_max);
  }
}

TEST(Uunifast, SumsExactly) {
  Rng rng(31);
  for (const std::size_t n : {1u, 2u, 5u, 20u}) {
    const auto u = uunifast(n, 0.9, rng);
    ASSERT_EQ(u.size(), n);
    double sum = 0.0;
    for (const double x : u) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 0.9, 1e-12);
  }
}

TEST(Uunifast, RejectsDegenerateInput) {
  Rng rng(1);
  EXPECT_THROW(uunifast(0, 0.5, rng), ContractViolation);
  EXPECT_THROW(uunifast(3, 0.0, rng), ContractViolation);
}

}  // namespace
}  // namespace ftmc::taskgen
