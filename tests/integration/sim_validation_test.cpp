/// Promotes the sim_validation bench verdict to a real test: the
/// analytical PFH bound (Eq. 2) must be consistent with the failure
/// count observed by the simulator, judged against the *exact* Poisson
/// (Garwood) interval on the rate. The normal-approximation band used
/// before collapsed to +-0 at zero observed failures, certifying the
/// bound vacuously; these tests also pin the non-vacuity of the fix.
#include <gtest/gtest.h>

#include "ftmc/core/analysis.hpp"
#include "ftmc/core/ft_task.hpp"
#include "ftmc/prob/poisson.hpp"
#include "ftmc/sim/engine.hpp"

namespace ftmc {
namespace {

core::FtTaskSet validation_set(double f) {
  const auto task = [f](const char* name, Millis period, Millis wcet,
                        Dal dal) {
    return core::FtTask{name, period, period, wcet, dal, f};
  };
  return core::FtTaskSet({task("hi1", 100, 4, Dal::B),
                          task("hi2", 60, 2, Dal::B),
                          task("lo1", 80, 6, Dal::C),
                          task("lo2", 120, 8, Dal::C)},
                         {Dal::B, Dal::C});
}

TEST(SimValidation, BoundConsistentWithExactPoissonInterval) {
  // f is inflated to 1e-2 so failures are observable within the two
  // simulated hours this test can afford (expected ~19 HI, ~15 LO).
  const core::FtTaskSet ts = validation_set(1e-2);
  const int n_hi = 2, n_lo = 2;
  const auto n = core::uniform_profile(ts, n_hi, n_lo);
  const double hours = 2.0;

  sim::SimConfig cfg;
  cfg.policy = sim::PolicyKind::kEdf;
  cfg.adaptation = mcs::AdaptationKind::kNone;
  cfg.horizon = static_cast<sim::Tick>(hours * sim::kTicksPerHour);
  cfg.seed = 424242;
  sim::Simulator simulator(
      sim::build_sim_tasks(ts, n_hi, n_lo, n_hi, 1.0), cfg);
  const sim::SimStats stats = simulator.run();

  for (const CritLevel level : {CritLevel::HI, CritLevel::LO}) {
    const double bound = core::pfh_plain(ts, n, level);
    const std::uint64_t k = simulator.failure_count(stats, level);
    const prob::PoissonInterval ci = prob::poisson_interval(k, 0.95);

    // The failure process must actually produce events here, otherwise
    // this test degenerates to the vacuous check it replaces.
    ASSERT_GE(k, 1u) << to_string(level);

    // The bound is an upper bound on the true rate: consistency means
    // it is not below the interval's lower edge.
    EXPECT_GE(bound, ci.lower / hours) << to_string(level) << " k=" << k;

    // Non-vacuity: with k >= 1 the lower edge is strictly positive, so
    // a bound that is wrong by three orders of magnitude IS refuted.
    EXPECT_GT(ci.lower, 0.0);
    EXPECT_LT(bound / 1000.0, ci.lower / hours)
        << "a deliberately broken bound must fail the check";
  }
}

TEST(SimValidation, ZeroFailuresYieldInformativeInterval) {
  // With f = 0 nothing ever fails: the old normal band was +-0 and any
  // bound passed trivially. The Garwood interval still has a positive
  // upper edge (3.689 events), which is what makes "no failures in h
  // hours" an informative statement about rates up to 3.689/h.
  const core::FtTaskSet ts = validation_set(0.0);
  sim::SimConfig cfg;
  cfg.policy = sim::PolicyKind::kEdf;
  cfg.adaptation = mcs::AdaptationKind::kNone;
  cfg.horizon = static_cast<sim::Tick>(0.1 * sim::kTicksPerHour);
  cfg.seed = 7;
  sim::Simulator simulator(sim::build_sim_tasks(ts, 2, 2, 2, 1.0), cfg);
  const sim::SimStats stats = simulator.run();

  const std::uint64_t k = simulator.failure_count(stats, CritLevel::HI);
  ASSERT_EQ(k, 0u);
  const prob::PoissonInterval ci = prob::poisson_interval(k, 0.95);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_NEAR(ci.upper, 3.68888, 1e-4);
}

}  // namespace
}  // namespace ftmc
