/// Integration tests: the discrete-event simulator must respect the
/// analytical guarantees — empirical PFH below the Lemma 3.1/3.3 bounds,
/// no deadline misses for sets the schedulability analyses accept, and
/// mode-switch frequency consistent with 1 - R(N', t).
#include <gtest/gtest.h>

#include "ftmc/core/analysis.hpp"
#include "ftmc/core/conversion.hpp"
#include "ftmc/core/ft_scheduler.hpp"
#include "ftmc/mcs/edf_vd.hpp"
#include "ftmc/sim/engine.hpp"

namespace ftmc {
namespace {

using core::FtTask;
using core::FtTaskSet;
using core::PerTaskProfile;

FtTask make(const std::string& name, Millis t, Millis c, Dal dal, double f) {
  return {name, t, t, c, dal, f};
}

/// A set that stays EDF-schedulable even with every job re-executed to its
/// full profile (so deadline misses cannot pollute the PFH comparison).
FtTaskSet light_set(double f) {
  return FtTaskSet({make("h", 100, 4, Dal::B, f),
                    make("l1", 80, 6, Dal::C, f),
                    make("l2", 120, 8, Dal::C, f)},
                   {Dal::B, Dal::C});
}

TEST(AnalysisVsSim, EmpiricalPfhBelowPlainBound) {
  // f = 0.01, n = 2 everywhere, no adaptation (n' = n): empirical
  // temporal-failure rate must stay below the Lemma 3.1 bound.
  const double f = 0.01;
  const FtTaskSet ts = light_set(f);
  const PerTaskProfile n = core::uniform_profile(ts, 2, 2);

  sim::SimConfig cfg;
  cfg.policy = sim::PolicyKind::kEdf;
  cfg.adaptation = mcs::AdaptationKind::kNone;
  cfg.horizon = 10 * sim::kTicksPerHour;
  cfg.seed = 17;
  sim::Simulator simulator(sim::build_sim_tasks(ts, 2, 2, 2, 1.0), cfg);
  const sim::SimStats stats = simulator.run();

  // No overload: every job must finish (successfully or by exhausting its
  // attempts) before its deadline.
  for (const auto& t : stats.per_task) {
    EXPECT_EQ(t.deadline_misses, 0u);
    EXPECT_EQ(t.killed, 0u);
  }

  const double bound_hi = core::pfh_plain(ts, n, CritLevel::HI);
  const double bound_lo = core::pfh_plain(ts, n, CritLevel::LO);
  const double emp_hi = simulator.empirical_pfh(stats, CritLevel::HI);
  const double emp_lo = simulator.empirical_pfh(stats, CritLevel::LO);
  // Bound ~ 3.6 failures/hour for HI, ~7.5 for LO at these magnitudes;
  // with 10 simulated hours the Poisson noise is well under the margin
  // built into the bound's worst-case round counting. Allow a small
  // statistical cushion on top of the bound.
  EXPECT_LE(emp_hi, bound_hi * 1.25 + 0.5);
  EXPECT_LE(emp_lo, bound_lo * 1.25 + 0.5);
  EXPECT_GT(emp_hi, 0.0);  // faults do happen at f = 1%
}

TEST(AnalysisVsSim, EdfVdScheduleHasNoMissesUnderWorstCaseFaults) {
  // Example 3.1 converted with n_HI = 3, n' = 2 passes EDF-VD; running it
  // with aggressive fault injection must produce zero deadline misses for
  // completed jobs (killed LO jobs are accounted separately).
  FtTaskSet ts({make("tau1", 60, 5, Dal::B, 0.05),
                make("tau2", 25, 4, Dal::B, 0.05),
                make("tau3", 40, 7, Dal::D, 0.05),
                make("tau4", 90, 6, Dal::D, 0.05),
                make("tau5", 70, 8, Dal::D, 0.05)},
               {Dal::B, Dal::D});
  const auto mc = core::convert_to_mc(ts, 3, 1, 2);
  const auto vd = mcs::analyze_edf_vd(mc);
  ASSERT_TRUE(vd.schedulable);

  sim::SimConfig cfg;
  cfg.policy = sim::PolicyKind::kEdfVd;
  cfg.adaptation = mcs::AdaptationKind::kKilling;
  cfg.horizon = sim::kTicksPerHour;
  cfg.seed = 5;
  sim::Simulator simulator(sim::build_sim_tasks(ts, 3, 1, 2, vd.x), cfg);
  const sim::SimStats stats = simulator.run();

  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(stats.per_task[i].deadline_misses, 0u)
        << "task " << ts[i].name;
  }
  // At f = 5% and n' = 2 the switch fires with probability 0.25% per HI
  // job; over ~200k HI jobs it certainly fired (and stays latched).
  EXPECT_EQ(stats.mode_switches, 1u);
}

TEST(AnalysisVsSim, ModeSwitchTimeConsistentWithSurvivalBound) {
  // P(switch within [0, t]) <= 1 - R(N', t). Pick f and n' so the switch
  // happens well inside the horizon, then check the analytical time at
  // which 1 - R reaches ~1 brackets the observed first switch.
  const double f = 0.2;
  FtTaskSet ts({make("h", 50, 2, Dal::B, f), make("l", 70, 2, Dal::D, f)},
               {Dal::B, Dal::D});
  const PerTaskProfile n_adapt = core::uniform_profile(ts, 1, 0);

  sim::SimConfig cfg;
  cfg.policy = sim::PolicyKind::kEdfVd;
  cfg.adaptation = mcs::AdaptationKind::kKilling;
  cfg.horizon = sim::kTicksPerHour;

  // Average the first switch time over independent seeds.
  double sum_first = 0.0;
  const int reps = 20;
  for (int rep = 0; rep < reps; ++rep) {
    cfg.seed = 100 + static_cast<std::uint64_t>(rep);
    sim::Simulator simulator(sim::build_sim_tasks(ts, 3, 1, 1, 1.0), cfg);
    const sim::SimStats stats = simulator.run();
    ASSERT_EQ(stats.mode_switches, 1u);
    sum_first += static_cast<double>(stats.first_mode_switch);
  }
  const double mean_first_ms =
      sum_first / reps / static_cast<double>(sim::kTicksPerMilli);

  // Geometric expectation: one round per 50 ms, trigger prob f = 0.2 per
  // round -> mean ~ 5 rounds ~ 250 ms. The analytical survival must agree:
  // R at the observed mean should be neither ~0 nor ~1.
  const double r_at_mean =
      core::survival_no_trigger(ts, n_adapt, mean_first_ms).linear();
  EXPECT_GT(r_at_mean, 0.05);
  EXPECT_LT(r_at_mean, 0.95);
}

TEST(AnalysisVsSim, KilledFractionBoundedByTriggerProbability) {
  // Over many short missions, the fraction of missions whose LO tasks got
  // killed must not exceed 1 - R(N', horizon) (Lemma 3.2) by more than
  // sampling noise.
  const double f = 0.05;
  FtTaskSet ts({make("h", 100, 5, Dal::B, f), make("l", 100, 5, Dal::D, f)},
               {Dal::B, Dal::D});
  const PerTaskProfile n_adapt = core::uniform_profile(ts, 2, 0);

  const Millis mission_ms = 10'000.0;  // 100 HI rounds
  const double p_bound =
      core::survival_no_trigger(ts, n_adapt, mission_ms)
          .complement()
          .linear();

  int killed_missions = 0;
  const int reps = 300;
  for (int rep = 0; rep < reps; ++rep) {
    sim::SimConfig cfg;
    cfg.policy = sim::PolicyKind::kEdfVd;
    cfg.adaptation = mcs::AdaptationKind::kKilling;
    cfg.horizon = sim::millis_to_ticks(mission_ms);
    cfg.seed = 1000 + static_cast<std::uint64_t>(rep);
    sim::Simulator simulator(sim::build_sim_tasks(ts, 3, 1, 2, 1.0), cfg);
    if (simulator.run().mode_switches > 0) ++killed_missions;
  }
  const double observed = static_cast<double>(killed_missions) / reps;
  // 4-sigma cushion on the binomial sample.
  const double sigma = std::sqrt(p_bound * (1 - p_bound) / reps);
  EXPECT_LE(observed, p_bound + 4.0 * sigma + 1e-9);
  EXPECT_GT(observed, 0.0);  // the trigger does fire at these magnitudes
}

TEST(AnalysisVsSim, FtScheduleResultRunsCleanInSimulator) {
  // End-to-end: FT-S succeeds on Example 3.1 (f = 1e-5 as in the paper;
  // f = 1e-3 would push n_HI to 5 and U_HI^HI above 1) -> simulate the
  // chosen configuration under EDF-VD with worst-case execution times and
  // minimal inter-arrival times.
  FtTaskSet ts({make("tau1", 60, 5, Dal::B, 1e-5),
                make("tau2", 25, 4, Dal::B, 1e-5),
                make("tau3", 40, 7, Dal::D, 1e-5),
                make("tau4", 90, 6, Dal::D, 1e-5),
                make("tau5", 70, 8, Dal::D, 1e-5)},
               {Dal::B, Dal::D});
  core::FtsConfig fts_cfg;
  fts_cfg.adaptation.kind = mcs::AdaptationKind::kKilling;
  fts_cfg.adaptation.os_hours = 1.0;
  const core::FtsResult r = core::ft_schedule(ts, fts_cfg);
  ASSERT_TRUE(r.success) << core::to_string(r.failure);

  const auto vd = mcs::analyze_edf_vd(r.converted);
  ASSERT_TRUE(vd.schedulable);

  sim::SimConfig cfg;
  cfg.policy = sim::PolicyKind::kEdfVd;
  cfg.adaptation = mcs::AdaptationKind::kKilling;
  cfg.horizon = sim::kTicksPerHour / 2;
  cfg.seed = 11;
  sim::Simulator simulator(
      sim::build_sim_tasks(ts, r.n_hi, r.n_lo, r.n_adapt, vd.x), cfg);
  const sim::SimStats stats = simulator.run();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(stats.per_task[i].deadline_misses, 0u)
        << "task " << ts[i].name;
  }
}

}  // namespace
}  // namespace ftmc
