#include "ftmc/core/safety.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"

namespace ftmc::core {
namespace {

TEST(SafetyRequirements, Do178bTable1) {
  const auto reqs = SafetyRequirements::do178b();
  EXPECT_EQ(reqs.standard_name(), "DO-178B");
  ASSERT_TRUE(reqs.requirement(Dal::A).has_value());
  EXPECT_DOUBLE_EQ(*reqs.requirement(Dal::A), 1e-9);
  EXPECT_DOUBLE_EQ(*reqs.requirement(Dal::B), 1e-7);
  EXPECT_DOUBLE_EQ(*reqs.requirement(Dal::C), 1e-5);
  // Levels D and E carry no quantified requirement (PFH >= 1e-5 / none).
  EXPECT_FALSE(reqs.requirement(Dal::D).has_value());
  EXPECT_FALSE(reqs.requirement(Dal::E).has_value());
}

TEST(SafetyRequirements, RequirementsStrictlyTightenWithCriticality) {
  const auto reqs = SafetyRequirements::do178b();
  EXPECT_LT(*reqs.requirement(Dal::A), *reqs.requirement(Dal::B));
  EXPECT_LT(*reqs.requirement(Dal::B), *reqs.requirement(Dal::C));
}

TEST(SafetyRequirements, SatisfiedUsesStrictInequality) {
  const auto reqs = SafetyRequirements::do178b();
  EXPECT_TRUE(reqs.satisfied(Dal::B, 9.9e-8));
  EXPECT_FALSE(reqs.satisfied(Dal::B, 1e-7));  // Table 1: PFH < 1e-7
  EXPECT_FALSE(reqs.satisfied(Dal::B, 2e-7));
}

TEST(SafetyRequirements, UnconstrainedLevelsAcceptAnything) {
  const auto reqs = SafetyRequirements::do178b();
  EXPECT_TRUE(reqs.satisfied(Dal::D, 1.0));
  EXPECT_TRUE(reqs.satisfied(Dal::E, 1e9));  // PFH bounds can exceed 1
  EXPECT_FALSE(reqs.constrains(Dal::D));
  EXPECT_FALSE(reqs.constrains(Dal::E));
  EXPECT_TRUE(reqs.constrains(Dal::C));
}

TEST(SafetyRequirements, Iec61508MapsSilLevels) {
  const auto reqs = SafetyRequirements::iec61508();
  EXPECT_DOUBLE_EQ(*reqs.requirement(Dal::A), 1e-8);
  EXPECT_DOUBLE_EQ(*reqs.requirement(Dal::B), 1e-7);
  EXPECT_DOUBLE_EQ(*reqs.requirement(Dal::C), 1e-6);
  EXPECT_DOUBLE_EQ(*reqs.requirement(Dal::D), 1e-5);
  EXPECT_FALSE(reqs.requirement(Dal::E).has_value());
}

TEST(SafetyRequirements, Iec61508IsStricterThanDo178bAtCandD) {
  const auto iec = SafetyRequirements::iec61508();
  const auto dob = SafetyRequirements::do178b();
  EXPECT_LT(*iec.requirement(Dal::C), *dob.requirement(Dal::C));
  EXPECT_TRUE(iec.constrains(Dal::D));
  EXPECT_FALSE(dob.constrains(Dal::D));
}

TEST(SafetyRequirements, CustomTable) {
  const auto reqs = SafetyRequirements::custom(
      "unit-test", {std::optional<double>{1e-6}, std::nullopt, std::nullopt,
                    std::nullopt, std::optional<double>{0.5}});
  EXPECT_EQ(reqs.standard_name(), "unit-test");
  EXPECT_DOUBLE_EQ(*reqs.requirement(Dal::A), 1e-6);
  EXPECT_FALSE(reqs.constrains(Dal::B));
  EXPECT_TRUE(reqs.satisfied(Dal::E, 0.49));
  EXPECT_FALSE(reqs.satisfied(Dal::E, 0.51));
}

TEST(SafetyRequirements, CustomRejectsNonPositiveBounds) {
  EXPECT_THROW(SafetyRequirements::custom(
                   "bad", {std::optional<double>{0.0}, std::nullopt,
                           std::nullopt, std::nullopt, std::nullopt}),
               ContractViolation);
  EXPECT_THROW(SafetyRequirements::custom(
                   "bad", {std::optional<double>{2.0}, std::nullopt,
                           std::nullopt, std::nullopt, std::nullopt}),
               ContractViolation);
}

TEST(SafetyRequirements, SatisfiedRejectsNegativePfh) {
  EXPECT_THROW((void)SafetyRequirements::do178b().satisfied(Dal::A, -1.0),
               ContractViolation);
}

}  // namespace
}  // namespace ftmc::core
