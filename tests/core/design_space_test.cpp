#include "ftmc/core/design_space.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ftmc/common/contracts.hpp"
#include "ftmc/fms/fms.hpp"

namespace ftmc::core {
namespace {

/// Accepts everything; stands in for a technique that handles
/// constrained deadlines so the checkpointed pipeline can succeed on a
/// non-implicit-deadline set (where umc_of cannot price U_MC).
class AcceptAllTest final : public mcs::SchedulabilityTest {
 public:
  [[nodiscard]] bool schedulable(const mcs::McTaskSet&) const override {
    return true;
  }
  [[nodiscard]] std::string name() const override { return "accept-all"; }
  [[nodiscard]] mcs::AdaptationKind adaptation() const override {
    return mcs::AdaptationKind::kKilling;
  }
};

FtTask make(const std::string& name, Millis t, Millis c, Dal dal,
            double f = 1e-5) {
  return {name, t, t, c, dal, f};
}

FtTaskSet example31(Dal lo = Dal::D) {
  return FtTaskSet({make("tau1", 60, 5, Dal::B), make("tau2", 25, 4, Dal::B),
                    make("tau3", 40, 7, lo), make("tau4", 90, 6, lo),
                    make("tau5", 70, 8, lo)},
                   {Dal::B, lo});
}

TEST(DesignSpace, EnumeratesGrid) {
  DesignSpaceOptions opt;
  opt.degradation_factors = {2.0, 6.0};
  opt.segment_counts = {1, 4};
  const auto points = explore_design_space(example31(), opt);
  // Per segment count: 1 killing + 2 degradation = 3; two counts = 6.
  ASSERT_EQ(points.size(), 6u);
  int killing = 0, degradation = 0;
  for (const auto& p : points) {
    if (p.kind == mcs::AdaptationKind::kKilling) ++killing;
    if (p.kind == mcs::AdaptationKind::kDegradation) ++degradation;
  }
  EXPECT_EQ(killing, 2);
  EXPECT_EQ(degradation, 4);
}

TEST(DesignSpace, Example31KillingCertifiable) {
  DesignSpaceOptions opt;
  opt.segment_counts = {1};
  const auto points = explore_design_space(example31(), opt);
  bool found = false;
  for (const auto& p : points) {
    if (p.kind == mcs::AdaptationKind::kKilling && p.segments == 1) {
      EXPECT_TRUE(p.certifiable);
      EXPECT_EQ(p.n_adapt, 2);
      EXPECT_DOUBLE_EQ(p.service_quality, 0.0);
      // LO = D is unconstrained: infinite safety margin.
      EXPECT_TRUE(std::isinf(p.safety_margin_orders));
      EXPECT_GT(p.schedulability_margin, 0.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DesignSpace, FmsParetoPrefersDegradation) {
  // On the FMS (LO = C, O_S = 10 h) killing is never certifiable; every
  // Pareto point must be a degradation configuration.
  DesignSpaceOptions opt;
  opt.os_hours = fms::kFmsOperationHours;
  opt.degradation_factors = {3.0, 6.0, 12.0};
  opt.segment_counts = {1};
  const auto points =
      explore_design_space(fms::canonical_fms_instance(), opt);
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  for (const std::size_t i : front) {
    EXPECT_EQ(points[i].kind, mcs::AdaptationKind::kDegradation);
    EXPECT_TRUE(points[i].certifiable);
  }
}

TEST(DesignSpace, ParetoExcludesDominatedPoints) {
  // Construct three synthetic points: b dominates c, a incomparable.
  DesignPoint a;
  a.certifiable = true;
  a.service_quality = 0.5;
  a.safety_margin_orders = 1.0;
  a.schedulability_margin = 0.1;
  DesignPoint b = a;
  b.service_quality = 0.2;
  b.safety_margin_orders = 5.0;
  DesignPoint c = b;
  c.safety_margin_orders = 4.0;  // dominated by b
  DesignPoint failed;            // never on the front
  failed.certifiable = false;
  failed.service_quality = 9.0;

  const auto front = pareto_front({a, b, c, failed});
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

TEST(DesignSpace, ServiceQualityDecreasesWithDf) {
  DesignSpaceOptions opt;
  opt.degradation_factors = {2.0, 12.0};
  opt.segment_counts = {1};
  opt.include_killing = false;
  const auto points = explore_design_space(example31(), opt);
  ASSERT_EQ(points.size(), 2u);
  if (points[0].certifiable && points[1].certifiable) {
    EXPECT_GT(points[0].service_quality, points[1].service_quality);
  }
}

TEST(DesignSpace, CheckpointedPointsEvaluated) {
  DesignSpaceOptions opt;
  opt.segment_counts = {4};
  opt.degradation_factors = {6.0};
  const auto points = explore_design_space(example31(), opt);
  for (const auto& p : points) {
    EXPECT_EQ(p.segments, 4);
    if (p.certifiable) {
      EXPECT_GE(p.u_mc, 0.0);
      EXPECT_LE(p.u_mc, 1.0);
    }
  }
}

TEST(DesignSpace, NanUmcIsDemotedToNonCertifiable) {
  // tau_hi has a constrained deadline (60 < 100), which the converted
  // set inherits; umc_of then has no implicit-deadline U_MC and returns
  // NaN. Such a point must come back non-certifiable instead of carrying
  // NaN scores into domination checks.
  const FtTaskSet ts({FtTask{"tau_hi", 100, 60, 8, Dal::B, 1e-9},
                      FtTask{"tau_lo", 100, 100, 8, Dal::D, 1e-9}},
                     DualCriticalityMapping{Dal::B, Dal::D});
  DesignSpaceOptions opt;
  opt.segment_counts = {2};
  opt.degradation_factors = {};
  opt.test = std::make_shared<const AcceptAllTest>();
  const auto points = explore_design_space(ts, opt);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_FALSE(points[0].certifiable);
  EXPECT_FALSE(std::isnan(points[0].service_quality));
  EXPECT_FALSE(std::isnan(points[0].safety_margin_orders));
  EXPECT_FALSE(std::isnan(points[0].schedulability_margin));
  EXPECT_TRUE(pareto_front(points).empty());
}

TEST(DesignSpace, ParetoExcludesNanScoredPoints) {
  // Even if a NaN-scored point claims to be certifiable, it must not
  // survive the front by incomparability (NaN compares false against
  // everything, so nothing can dominate it).
  DesignPoint good;
  good.certifiable = true;
  good.service_quality = 0.5;
  good.safety_margin_orders = 1.0;
  good.schedulability_margin = 0.1;
  DesignPoint poisoned = good;
  poisoned.service_quality = 9.0;
  poisoned.schedulability_margin =
      std::numeric_limits<double>::quiet_NaN();
  const auto front = pareto_front({good, poisoned});
  EXPECT_EQ(front, (std::vector<std::size_t>{0}));
}

TEST(DesignSpace, ParallelExplorationMatchesSerial) {
  DesignSpaceOptions serial_opt;
  serial_opt.threads = 1;
  DesignSpaceOptions parallel_opt;
  parallel_opt.threads = 3;
  const auto a = explore_design_space(example31(), serial_opt);
  const auto b = explore_design_space(example31(), parallel_opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].certifiable, b[i].certifiable);
    EXPECT_EQ(a[i].u_mc, b[i].u_mc);
    EXPECT_EQ(a[i].pfh_lo, b[i].pfh_lo);
    EXPECT_EQ(a[i].service_quality, b[i].service_quality);
  }
}

TEST(DesignSpace, RejectsBadGrid) {
  DesignSpaceOptions opt;
  opt.segment_counts = {};
  EXPECT_THROW((void)explore_design_space(example31(), opt),
               ContractViolation);
  opt = DesignSpaceOptions{};
  opt.degradation_factors = {0.5};
  EXPECT_THROW((void)explore_design_space(example31(), opt),
               ContractViolation);
}

}  // namespace
}  // namespace ftmc::core
