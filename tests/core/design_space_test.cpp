#include "ftmc/core/design_space.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"
#include "ftmc/fms/fms.hpp"

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal,
            double f = 1e-5) {
  return {name, t, t, c, dal, f};
}

FtTaskSet example31(Dal lo = Dal::D) {
  return FtTaskSet({make("tau1", 60, 5, Dal::B), make("tau2", 25, 4, Dal::B),
                    make("tau3", 40, 7, lo), make("tau4", 90, 6, lo),
                    make("tau5", 70, 8, lo)},
                   {Dal::B, lo});
}

TEST(DesignSpace, EnumeratesGrid) {
  DesignSpaceOptions opt;
  opt.degradation_factors = {2.0, 6.0};
  opt.segment_counts = {1, 4};
  const auto points = explore_design_space(example31(), opt);
  // Per segment count: 1 killing + 2 degradation = 3; two counts = 6.
  ASSERT_EQ(points.size(), 6u);
  int killing = 0, degradation = 0;
  for (const auto& p : points) {
    if (p.kind == mcs::AdaptationKind::kKilling) ++killing;
    if (p.kind == mcs::AdaptationKind::kDegradation) ++degradation;
  }
  EXPECT_EQ(killing, 2);
  EXPECT_EQ(degradation, 4);
}

TEST(DesignSpace, Example31KillingCertifiable) {
  DesignSpaceOptions opt;
  opt.segment_counts = {1};
  const auto points = explore_design_space(example31(), opt);
  bool found = false;
  for (const auto& p : points) {
    if (p.kind == mcs::AdaptationKind::kKilling && p.segments == 1) {
      EXPECT_TRUE(p.certifiable);
      EXPECT_EQ(p.n_adapt, 2);
      EXPECT_DOUBLE_EQ(p.service_quality, 0.0);
      // LO = D is unconstrained: infinite safety margin.
      EXPECT_TRUE(std::isinf(p.safety_margin_orders));
      EXPECT_GT(p.schedulability_margin, 0.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DesignSpace, FmsParetoPrefersDegradation) {
  // On the FMS (LO = C, O_S = 10 h) killing is never certifiable; every
  // Pareto point must be a degradation configuration.
  DesignSpaceOptions opt;
  opt.os_hours = fms::kFmsOperationHours;
  opt.degradation_factors = {3.0, 6.0, 12.0};
  opt.segment_counts = {1};
  const auto points =
      explore_design_space(fms::canonical_fms_instance(), opt);
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  for (const std::size_t i : front) {
    EXPECT_EQ(points[i].kind, mcs::AdaptationKind::kDegradation);
    EXPECT_TRUE(points[i].certifiable);
  }
}

TEST(DesignSpace, ParetoExcludesDominatedPoints) {
  // Construct three synthetic points: b dominates c, a incomparable.
  DesignPoint a;
  a.certifiable = true;
  a.service_quality = 0.5;
  a.safety_margin_orders = 1.0;
  a.schedulability_margin = 0.1;
  DesignPoint b = a;
  b.service_quality = 0.2;
  b.safety_margin_orders = 5.0;
  DesignPoint c = b;
  c.safety_margin_orders = 4.0;  // dominated by b
  DesignPoint failed;            // never on the front
  failed.certifiable = false;
  failed.service_quality = 9.0;

  const auto front = pareto_front({a, b, c, failed});
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1}));
}

TEST(DesignSpace, ServiceQualityDecreasesWithDf) {
  DesignSpaceOptions opt;
  opt.degradation_factors = {2.0, 12.0};
  opt.segment_counts = {1};
  opt.include_killing = false;
  const auto points = explore_design_space(example31(), opt);
  ASSERT_EQ(points.size(), 2u);
  if (points[0].certifiable && points[1].certifiable) {
    EXPECT_GT(points[0].service_quality, points[1].service_quality);
  }
}

TEST(DesignSpace, CheckpointedPointsEvaluated) {
  DesignSpaceOptions opt;
  opt.segment_counts = {4};
  opt.degradation_factors = {6.0};
  const auto points = explore_design_space(example31(), opt);
  for (const auto& p : points) {
    EXPECT_EQ(p.segments, 4);
    if (p.certifiable) {
      EXPECT_GE(p.u_mc, 0.0);
      EXPECT_LE(p.u_mc, 1.0);
    }
  }
}

TEST(DesignSpace, RejectsBadGrid) {
  DesignSpaceOptions opt;
  opt.segment_counts = {};
  EXPECT_THROW((void)explore_design_space(example31(), opt),
               ContractViolation);
  opt = DesignSpaceOptions{};
  opt.degradation_factors = {0.5};
  EXPECT_THROW((void)explore_design_space(example31(), opt),
               ContractViolation);
}

}  // namespace
}  // namespace ftmc::core
