#include "ftmc/core/profiles.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal, double f) {
  return {name, t, t, c, dal, f};
}

FtTaskSet example31(Dal lo = Dal::D) {
  return FtTaskSet({make("tau1", 60, 5, Dal::B, 1e-5),
                    make("tau2", 25, 4, Dal::B, 1e-5),
                    make("tau3", 40, 7, lo, 1e-5),
                    make("tau4", 90, 6, lo, 1e-5),
                    make("tau5", 70, 8, lo, 1e-5)},
                   {Dal::B, lo});
}

TEST(MinReexecProfile, Example31NeedsThreeExecutions) {
  // Paper Sec. 3.2: "for the HI criticality tasks, we can derive according
  // to (2) their minimal re-execution profiles: n1 = n2 = 3".
  const auto reqs = SafetyRequirements::do178b();
  const auto n = min_reexec_profile(example31(), CritLevel::HI, reqs);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 3);
}

TEST(MinReexecProfile, UnconstrainedLoLevelNeedsOneExecution) {
  // Level D tasks are not safety-related: n3 = n4 = n5 = 1.
  const auto reqs = SafetyRequirements::do178b();
  const auto n = min_reexec_profile(example31(Dal::D), CritLevel::LO, reqs);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 1);
}

TEST(MinReexecProfile, LevelCLoTasksNeedReexecution) {
  // With LO = C the requirement pfh < 1e-5 forces n_LO >= 2:
  // ~181k rounds/hour at f = 1e-5 gives 1.8 at n=1, 1.8e-5 at n=2... so 3.
  const auto reqs = SafetyRequirements::do178b();
  const auto n = min_reexec_profile(example31(Dal::C), CritLevel::LO, reqs);
  ASSERT_TRUE(n.has_value());
  EXPECT_GT(*n, 1);
  // Verify minimality: the profile below fails, this one passes.
  const FtTaskSet ts = example31(Dal::C);
  EXPECT_FALSE(reqs.satisfied(
      Dal::C, pfh_plain(ts, PerTaskProfile(ts.size(), *n - 1),
                        CritLevel::LO)));
  EXPECT_TRUE(reqs.satisfied(
      Dal::C,
      pfh_plain(ts, PerTaskProfile(ts.size(), *n), CritLevel::LO)));
}

TEST(MinReexecProfile, StricterStandardNeedsLargerProfile) {
  const FtTaskSet ts = example31(Dal::C);
  const auto do178b =
      min_reexec_profile(ts, CritLevel::LO, SafetyRequirements::do178b());
  const auto iec =
      min_reexec_profile(ts, CritLevel::LO, SafetyRequirements::iec61508());
  ASSERT_TRUE(do178b.has_value());
  ASSERT_TRUE(iec.has_value());
  EXPECT_GE(*iec, *do178b);  // IEC 61508 level C bound is 10x tighter
}

TEST(MinReexecProfile, CertainFailureIsInfeasible) {
  // f extremely close to 1: no profile within the cap can meet 1e-9.
  FtTaskSet ts({make("h", 100, 10, Dal::A, 0.99)}, {Dal::A, Dal::E});
  const auto n =
      min_reexec_profile(ts, CritLevel::HI, SafetyRequirements::do178b());
  EXPECT_FALSE(n.has_value());
}

TEST(MinReexecProfile, EmptyLevelIsTrivial) {
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-5)}, {Dal::B, Dal::C});
  const auto n =
      min_reexec_profile(ts, CritLevel::LO, SafetyRequirements::do178b());
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 1);
}

TEST(MinAdaptationProfile, UnconstrainedLoAllowsImmediateKilling) {
  // LO in {D, E}: "they can be killed without jeopardizing the system
  // safety" -> n' = 0 is admissible.
  AdaptationModel model;
  model.kind = mcs::AdaptationKind::kKilling;
  model.os_hours = 1.0;
  const auto n1 = min_adaptation_profile(
      example31(Dal::D), 3, 1, SafetyRequirements::do178b(), model);
  ASSERT_TRUE(n1.has_value());
  EXPECT_EQ(*n1, 0);
}

TEST(MinAdaptationProfile, KillingInfeasibleForLevelCLoTasks) {
  // With LO = C, any kill within n' < n_HI leaves pfh(LO) >> 1e-5 at this
  // scale (the Fig. 1 situation): no admissible killing profile exists.
  AdaptationModel model;
  model.kind = mcs::AdaptationKind::kKilling;
  model.os_hours = 10.0;
  const FtTaskSet ts = example31(Dal::C);
  const auto n1 = min_adaptation_profile(ts, 3, 3,
                                         SafetyRequirements::do178b(), model);
  EXPECT_FALSE(n1.has_value());
}

TEST(MinAdaptationProfile, DegradationFeasibleForLevelCLoTasks) {
  // Same configuration, degradation instead of killing: feasible (the
  // Fig. 2 situation).
  AdaptationModel model;
  model.kind = mcs::AdaptationKind::kDegradation;
  model.degradation_factor = 6.0;
  model.os_hours = 10.0;
  const FtTaskSet ts = example31(Dal::C);
  const auto n1 = min_adaptation_profile(ts, 3, 3,
                                         SafetyRequirements::do178b(), model);
  ASSERT_TRUE(n1.has_value());
  EXPECT_LT(*n1, 3);
}

TEST(MinAdaptationProfile, ResultIsMinimal) {
  AdaptationModel model;
  model.kind = mcs::AdaptationKind::kDegradation;
  model.degradation_factor = 6.0;
  model.os_hours = 10.0;
  const FtTaskSet ts = example31(Dal::C);
  const auto reqs = SafetyRequirements::do178b();
  const auto n1 = min_adaptation_profile(ts, 3, 3, reqs, model);
  ASSERT_TRUE(n1.has_value());
  const double req = *reqs.requirement(Dal::C);
  EXPECT_LT(pfh_lo_under_adaptation(ts, 3, 3, *n1, model), req);
  if (*n1 > 0) {
    EXPECT_GE(pfh_lo_under_adaptation(ts, 3, 3, *n1 - 1, model), req);
  }
}

TEST(MinAdaptationProfile, RejectsNonPositiveProfiles) {
  AdaptationModel model;
  EXPECT_THROW((void)min_adaptation_profile(example31(), 0, 1,
                                      SafetyRequirements::do178b(), model),
               ContractViolation);
}

TEST(PfhLoUnderAdaptation, DispatchesAllThreeKinds) {
  const FtTaskSet ts = example31(Dal::C);
  AdaptationModel none;
  none.kind = mcs::AdaptationKind::kNone;
  AdaptationModel kill;
  kill.kind = mcs::AdaptationKind::kKilling;
  kill.os_hours = 1.0;
  AdaptationModel degrade;
  degrade.kind = mcs::AdaptationKind::kDegradation;
  degrade.degradation_factor = 6.0;
  degrade.os_hours = 1.0;

  const double p_none = pfh_lo_under_adaptation(ts, 3, 2, 2, none);
  const double p_kill = pfh_lo_under_adaptation(ts, 3, 2, 2, kill);
  const double p_degrade = pfh_lo_under_adaptation(ts, 3, 2, 2, degrade);
  EXPECT_DOUBLE_EQ(p_none, pfh_plain(ts, uniform_profile(ts, 3, 2),
                                     CritLevel::LO));
  // Killing >= plain >= degradation at identical profiles.
  EXPECT_GE(p_kill, p_none);
  EXPECT_LE(p_degrade, p_none);
}

}  // namespace
}  // namespace ftmc::core
