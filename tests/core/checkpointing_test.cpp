#include "ftmc/core/checkpointing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ftmc/common/contracts.hpp"
#include "ftmc/prob/safe_math.hpp"

namespace ftmc::core {
namespace {

FtTask make(Millis t, Millis c, double f) {
  return {"x", t, t, c, Dal::B, f};
}

TEST(CheckpointScheme, ValidateRejectsMalformed) {
  EXPECT_THROW((CheckpointScheme{0, 1, 0.0}).validate(), ContractViolation);
  EXPECT_THROW((CheckpointScheme{2, -1, 0.0}).validate(),
               ContractViolation);
  EXPECT_THROW((CheckpointScheme{2, 1, 1.0}).validate(), ContractViolation);
  EXPECT_NO_THROW((CheckpointScheme{4, 3, 0.05}).validate());
}

TEST(CheckpointedWcet, DegeneratesToReexecution) {
  // k = 1, o = 0, R = n-1 -> budget (R+1)*C, exactly re-execution.
  const FtTask t = make(100, 10, 1e-5);
  EXPECT_DOUBLE_EQ(checkpointed_wcet(t, {1, 2, 0.0}), 30.0);  // n = 3
  EXPECT_DOUBLE_EQ(checkpointed_wcet(t, {1, 0, 0.0}), 10.0);  // n = 1
}

TEST(CheckpointedWcet, SegmentsShrinkRetryCost) {
  const FtTask t = make(100, 12, 1e-5);
  // k = 4, o = 0, R = 2: 12 + 2 * 3 = 18, vs re-execution's 36 at n = 3.
  EXPECT_DOUBLE_EQ(checkpointed_wcet(t, {4, 2, 0.0}), 18.0);
}

TEST(CheckpointedWcet, OverheadCharged) {
  const FtTask t = make(100, 10, 1e-5);
  // k = 2, o = 0.1: base 10 + 2*1 = 12; R = 1 retry: 5 + 1 = 6 -> 18.
  EXPECT_DOUBLE_EQ(checkpointed_wcet(t, {2, 1, 0.1}), 18.0);
}

TEST(SegmentFailureProb, ComposesBackToF) {
  // (1 - f_seg)^k == 1 - f.
  for (const double f : {1e-2, 1e-4, 1e-6}) {
    for (const int k : {1, 2, 4, 8}) {
      const double q = segment_failure_prob(f, k);
      EXPECT_NEAR(std::pow(1.0 - q, k), 1.0 - f, 1e-12) << f << " " << k;
    }
  }
}

TEST(SegmentFailureProb, OneSegmentIsF) {
  EXPECT_DOUBLE_EQ(segment_failure_prob(0.25, 1), 0.25);
  EXPECT_DOUBLE_EQ(segment_failure_prob(0.0, 4), 0.0);
}

TEST(JobFailureProb, DegeneratesToReexecutionPower) {
  // k = 1, R = n-1: P(fail) = f^n exactly.
  for (const double f : {1e-2, 1e-5}) {
    for (const int n : {1, 2, 3, 4}) {
      const double p =
          checkpointed_job_failure_prob(f, {1, n - 1, 0.0});
      EXPECT_NEAR(p, prob::pow_prob(f, n), prob::pow_prob(f, n) * 1e-9)
          << f << " n=" << n;
    }
  }
}

TEST(JobFailureProb, MatchesDirectEnumerationSmallCase) {
  // k = 2, R = 1, q computable: fail iff >= 2 faults among first 3
  // attempts: 3 q^2 (1-q) + q^3.
  const double f = 0.19;  // q = 1 - sqrt(0.81) = 0.1
  const double q = segment_failure_prob(f, 2);
  ASSERT_NEAR(q, 0.1, 1e-12);
  const double expected = 3 * q * q * (1 - q) + q * q * q;
  EXPECT_NEAR(checkpointed_job_failure_prob(f, {2, 1, 0.0}), expected,
              1e-12);
}

TEST(JobFailureProb, MonotoneInRetryBudget) {
  for (const int k : {1, 2, 4}) {
    double prev = 1.0;
    for (int r = 0; r <= 6; ++r) {
      const double p = checkpointed_job_failure_prob(1e-3, {k, r, 0.0});
      EXPECT_LT(p, prev) << "k=" << k << " r=" << r;
      prev = p;
    }
  }
}

TEST(JobFailureProb, ZeroFaultRateIsZero) {
  EXPECT_DOUBLE_EQ(checkpointed_job_failure_prob(0.0, {4, 2, 0.05}), 0.0);
}

TEST(JobFailureProb, TinyProbabilitiesSurviveLogDomain) {
  // f = 1e-6, k = 2, R = 4: q ~ 5e-7; fail needs 5 faults in 6 attempts
  // ~ C(6,5) q^5 ~ 1.9e-31 — representable and positive.
  const double p = checkpointed_job_failure_prob(1e-6, {2, 4, 0.0});
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1e-29);
}

TEST(MinRetryBudget, FindsMinimal) {
  const FtTask t = make(100, 10, 1e-3);
  // Target 1e-8: k=1 -> f^n < 1e-8 needs n = 3 i.e. R = 2.
  const auto r = min_retry_budget(t, 1, 0.0, 1e-8);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 2);
  // More segments raise q per segment, so the budget can grow, but the
  // retry *cost* shrinks; the budget search itself stays monotone.
  const auto r4 = min_retry_budget(t, 4, 0.0, 1e-8);
  ASSERT_TRUE(r4.has_value());
  EXPECT_GE(*r4, *r);
}

TEST(MinRetryBudget, ImpossibleTargetReturnsNullopt) {
  FtTask t = make(100, 10, 0.5);
  EXPECT_FALSE(min_retry_budget(t, 1, 0.0, 1e-300, 4).has_value());
}

TEST(PfhCheckpointed, MatchesReexecutionInDegenerateCase) {
  FtTaskSet ts({make(60, 5, 1e-5), make(25, 4, 1e-5)}, {Dal::B, Dal::C});
  // k = 1, R = 2 <=> n = 3 re-execution: pfh(HI) = 2.04e-10 (Example 3.1
  // HI tasks).
  const std::vector<CheckpointScheme> schemes(2, {1, 2, 0.0});
  EXPECT_NEAR(pfh_plain_checkpointed(ts, schemes, CritLevel::HI), 2.04e-10,
              1e-14);
}

TEST(PfhCheckpointed, SegmentationReducesUtilizationAtEqualSafety) {
  // The headline property: at comparable safety, checkpointing (k = 4)
  // needs a smaller worst-case budget than re-execution (k = 1).
  FtTaskSet ts({make(60, 5, 1e-4), make(25, 4, 1e-4)}, {Dal::B, Dal::C});
  const double target = 1e-12;  // per-job failure target

  std::vector<CheckpointScheme> reexec, ckpt;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    reexec.push_back({1, *min_retry_budget(ts[i], 1, 0.0, target), 0.0});
    ckpt.push_back({4, *min_retry_budget(ts[i], 4, 0.0, target), 0.0});
  }
  const double u_reexec =
      utilization_checkpointed(ts, reexec, CritLevel::HI);
  const double u_ckpt = utilization_checkpointed(ts, ckpt, CritLevel::HI);
  EXPECT_LT(u_ckpt, u_reexec);
  // And both meet the safety target.
  EXPECT_LT(pfh_plain_checkpointed(ts, reexec, CritLevel::HI), 1e-5);
  EXPECT_LT(pfh_plain_checkpointed(ts, ckpt, CritLevel::HI), 1e-5);
}

TEST(UtilizationCheckpointed, SumsOnlyRequestedLevel) {
  FtTaskSet ts({make(100, 10, 1e-5),
                {"lo", 50, 50, 5, Dal::C, 1e-5}},
               {Dal::B, Dal::C});
  const std::vector<CheckpointScheme> schemes(2, {1, 0, 0.0});
  EXPECT_DOUBLE_EQ(utilization_checkpointed(ts, schemes, CritLevel::HI),
                   0.1);
  EXPECT_DOUBLE_EQ(utilization_checkpointed(ts, schemes, CritLevel::LO),
                   0.1);
}

}  // namespace
}  // namespace ftmc::core
