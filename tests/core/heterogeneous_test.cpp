#include "ftmc/core/heterogeneous.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"
#include "ftmc/core/conversion.hpp"
#include "ftmc/fms/fms.hpp"
#include "ftmc/mcs/edf_vd.hpp"
#include "ftmc/mcs/edf_vd_degradation.hpp"

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal,
            double f = 1e-5) {
  return {name, t, t, c, dal, f};
}

FtTaskSet example31() {
  return FtTaskSet({make("tau1", 60, 5, Dal::B), make("tau2", 25, 4, Dal::B),
                    make("tau3", 40, 7, Dal::D), make("tau4", 90, 6, Dal::D),
                    make("tau5", 70, 8, Dal::D)},
                   {Dal::B, Dal::D});
}

AdaptationModel killing(double os = 1.0) {
  AdaptationModel m;
  m.kind = mcs::AdaptationKind::kKilling;
  m.os_hours = os;
  return m;
}

TEST(AdaptationBudget, KillingClosedForm) {
  // u_lo_lo = 0.4, u_hi_hi = 0.7: budget = min(0.6, 0.3*0.6/0.4) = 0.45.
  EXPECT_NEAR(
      adaptation_budget(0.4, 0.7, mcs::AdaptationKind::kKilling, 1.0), 0.45,
      1e-12);
}

TEST(AdaptationBudget, KillingNoLoTasksBudgetIsLoBranch) {
  EXPECT_NEAR(
      adaptation_budget(0.0, 0.7, mcs::AdaptationKind::kKilling, 1.0), 1.0,
      1e-12);
}

TEST(AdaptationBudget, DegradationClosedForm) {
  // u_lo_lo = 0.4, u_hi_hi = 0.5, df = 6: residual = 1 - 0.08 = 0.92;
  // lambda_max = 1 - 0.5/0.92; budget = min(0.6, lambda_max * 0.6).
  const double lambda_max = 1.0 - 0.5 / 0.92;
  EXPECT_NEAR(adaptation_budget(0.4, 0.5,
                                mcs::AdaptationKind::kDegradation, 6.0),
              lambda_max * 0.6, 1e-12);
}

TEST(AdaptationBudget, InfeasibleCasesNegative) {
  EXPECT_LT(adaptation_budget(1.1, 0.1, mcs::AdaptationKind::kKilling, 1.0),
            0.0);
  EXPECT_LT(adaptation_budget(0.4, 1.2, mcs::AdaptationKind::kKilling, 1.0),
            0.0);
  // df so small the degraded LO load alone saturates: 0.9/(1.5-1) = 1.8.
  EXPECT_LT(adaptation_budget(0.9, 0.1,
                              mcs::AdaptationKind::kDegradation, 1.5),
            0.0);
}

TEST(AdaptationBudget, RejectsNoneKind) {
  EXPECT_THROW(
      (void)adaptation_budget(0.4, 0.5, mcs::AdaptationKind::kNone, 1.0),
      ContractViolation);
}

TEST(AdaptationBudget, BudgetMatchesUmcBoundary) {
  // Consuming exactly the budget lands U_MC at 1 (up to rounding); a hair
  // more exceeds it.
  const double u_lo_lo = 0.36, u_hi_hi = 0.6;
  const double budget =
      adaptation_budget(u_lo_lo, u_hi_hi, mcs::AdaptationKind::kKilling, 1.0);
  EXPECT_LE(mcs::edf_vd_umc(u_lo_lo, budget, u_hi_hi), 1.0 + 1e-9);
  EXPECT_GT(mcs::edf_vd_umc(u_lo_lo, budget + 1e-6, u_hi_hi), 1.0);
}

TEST(Heterogeneous, Example31AllocationIsSchedulable) {
  const FtTaskSet ts = example31();
  const auto r = optimize_adaptation_profiles(
      ts, 3, 1, killing(), SafetyRequirements::do178b());
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.budget_used, r.budget + 1e-9);
  // The converted set with the heterogeneous profiles passes EDF-VD.
  const PerTaskProfile n = uniform_profile(ts, 3, 1);
  const auto mc = convert_to_mc(ts, n, r.n_adapt);
  EXPECT_TRUE(mcs::EdfVdTest{}.schedulable(mc));
}

TEST(Heterogeneous, ProfilesRespectCaps) {
  const FtTaskSet ts = example31();
  const auto r = optimize_adaptation_profiles(
      ts, 3, 1, killing(), SafetyRequirements::do178b());
  ASSERT_TRUE(r.feasible);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts.crit_of(i) == CritLevel::HI) {
      EXPECT_GE(r.n_adapt[i], 0);
      EXPECT_LE(r.n_adapt[i], 3);
    } else {
      EXPECT_EQ(r.n_adapt[i], 0);
    }
  }
}

TEST(Heterogeneous, DominatesBestUniformProfile) {
  // The greedy result must be at least as safe as any uniform profile
  // n' whose budget fits (the uniform allocation is a reachable point).
  const FtTaskSet ts = example31();
  const AdaptationModel model = killing();
  const auto r = optimize_adaptation_profiles(ts, 3, 1, model,
                                              SafetyRequirements::do178b());
  ASSERT_TRUE(r.feasible);
  const double u_hi = ts.utilization(CritLevel::HI);
  for (int uniform = 0; uniform <= 3; ++uniform) {
    if (uniform * u_hi > r.budget + 1e-12) continue;  // not admissible
    const double uniform_pfh =
        pfh_lo_under_adaptation(ts, 3, 1, uniform, model);
    EXPECT_LE(r.pfh_lo, uniform_pfh * (1.0 + 1e-9))
        << "uniform n' = " << uniform;
  }
}

TEST(Heterogeneous, FmsDegradationStaysSafe) {
  const FtTaskSet fms = fms::canonical_fms_instance();
  AdaptationModel model;
  model.kind = mcs::AdaptationKind::kDegradation;
  model.degradation_factor = fms::kFmsDegradationFactor;
  model.os_hours = fms::kFmsOperationHours;
  const auto r = optimize_adaptation_profiles(
      fms, 3, 2, model, SafetyRequirements::do178b());
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.safe);
  EXPECT_LT(r.pfh_lo, 1e-5);
  // Schedulable under the degradation test with the implied U_HI^LO.
  const PerTaskProfile n = uniform_profile(fms, 3, 2);
  const auto mc = convert_to_mc(fms, n, r.n_adapt);
  EXPECT_TRUE(mcs::EdfVdDegradationTest{fms::kFmsDegradationFactor}
                  .schedulable(mc));
}

TEST(Heterogeneous, InfeasibleLoadReported) {
  FtTaskSet ts({make("h", 10, 6, Dal::B), make("l", 10, 6, Dal::D)},
               {Dal::B, Dal::D});
  const auto r = optimize_adaptation_profiles(
      ts, 2, 1, killing(), SafetyRequirements::do178b());
  EXPECT_FALSE(r.feasible);  // u_hi_hi = 1.2 alone exceeds the processor
}

TEST(Heterogeneous, BudgetUsedNeverExceedsBudget) {
  const FtTaskSet fms = fms::canonical_fms_instance();
  const auto r = optimize_adaptation_profiles(
      fms, 3, 2, killing(fms::kFmsOperationHours),
      SafetyRequirements::do178b());
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.budget_used, r.budget + 1e-9);
  EXPECT_GE(r.steps, 0);
}

}  // namespace
}  // namespace ftmc::core
