#include "ftmc/core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ftmc/common/contracts.hpp"

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal, double f) {
  return {name, t, t, c, dal, f};
}

/// The task set of paper Example 3.1 (Table 2): HI in {A,B,C}, LO in {D,E};
/// f = 1e-5 for every job.
FtTaskSet example31(Dal hi = Dal::B, Dal lo = Dal::D) {
  return FtTaskSet({make("tau1", 60, 5, hi, 1e-5),
                    make("tau2", 25, 4, hi, 1e-5),
                    make("tau3", 40, 7, lo, 1e-5),
                    make("tau4", 90, 6, lo, 1e-5),
                    make("tau5", 70, 8, lo, 1e-5)},
                   {hi, lo});
}

TEST(Rounds, Eq1HandValues) {
  const FtTask t = make("x", 60, 5, Dal::B, 1e-5);
  // r(3, 1 hour) = floor((3.6e6 - 15)/60) + 1 = 60000 (Example 3.1).
  EXPECT_DOUBLE_EQ(rounds(t, 3, kMillisPerHour), 60000.0);
  const FtTask t2 = make("y", 25, 4, Dal::B, 1e-5);
  EXPECT_DOUBLE_EQ(rounds(t2, 3, kMillisPerHour), 144000.0);
}

TEST(Rounds, WindowTooShortGivesZero) {
  const FtTask t = make("x", 100, 30, Dal::B, 1e-5);
  EXPECT_DOUBLE_EQ(rounds(t, 2, 59.9), 0.0);   // needs n*C = 60
  EXPECT_DOUBLE_EQ(rounds(t, 2, 60.0), 1.0);   // exactly one round fits
  EXPECT_DOUBLE_EQ(rounds(t, 2, 160.0), 2.0);  // (k-1)T + nC = 160
}

TEST(Rounds, FootnoteZeroExecutionAssumption) {
  // Footnote 1: if attempts may finish early, C -> 0 in Eq. (1).
  const FtTask t = make("x", 100, 30, Dal::B, 1e-5);
  EXPECT_DOUBLE_EQ(rounds(t, 2, 59.9, ExecAssumption::kZero), 1.0);
  EXPECT_DOUBLE_EQ(rounds(t, 2, 250.0, ExecAssumption::kZero), 3.0);
  // The zero-assumption never yields fewer rounds (it is the safe side).
  for (double time = 0.0; time < 1000.0; time += 37.0) {
    EXPECT_GE(rounds(t, 2, time, ExecAssumption::kZero),
              rounds(t, 2, time, ExecAssumption::kFullWcet));
  }
}

TEST(PfhPlain, Example31GoldenValue) {
  // Paper Sec. 3.2: with n1 = n2 = 3, pfh(HI) = 2.04e-10.
  const FtTaskSet ts = example31();
  const PerTaskProfile n = uniform_profile(ts, 3, 1);
  EXPECT_NEAR(pfh_plain(ts, n, CritLevel::HI), 2.04e-10, 1e-14);
}

TEST(PfhPlain, Example31SingleExecutionHiLevel) {
  // With n = 1: (60000 + 144000) * 1e-5 = 2.04 failures/hour.
  const FtTaskSet ts = example31();
  const PerTaskProfile n = uniform_profile(ts, 1, 1);
  EXPECT_NEAR(pfh_plain(ts, n, CritLevel::HI), 2.04, 1e-6);
}

TEST(PfhPlain, LoLevelCountsOnlyLoTasks) {
  const FtTaskSet ts = example31();
  const PerTaskProfile n = uniform_profile(ts, 3, 1);
  // LO rounds/hour: 90000 (T=40) + 40000 (T=90) + 51429 (T=70), each 1e-5.
  const double expected = (90000.0 + 40000.0 + 51429.0) * 1e-5;
  EXPECT_NEAR(pfh_plain(ts, n, CritLevel::LO), expected, 1e-6);
}

TEST(PfhPlain, ZeroFailureProbabilityGivesZeroPfh) {
  FtTaskSet ts({make("h", 100, 10, Dal::B, 0.0)}, {Dal::B, Dal::C});
  EXPECT_DOUBLE_EQ(pfh_plain(ts, {1}, CritLevel::HI), 0.0);
}

TEST(PfhPlain, RejectsZeroProfile) {
  const FtTaskSet ts = example31();
  PerTaskProfile n = uniform_profile(ts, 3, 1);
  n[0] = 0;
  EXPECT_THROW((void)pfh_plain(ts, n, CritLevel::HI), ContractViolation);
}

// Property: pfh(chi) strictly decreases with the re-execution profile
// (more attempts -> exponentially safer), for any failure probability.
class PfhMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PfhMonotone, DecreasingInN) {
  const double f = GetParam();
  FtTaskSet ts({make("h", 50, 5, Dal::B, f)}, {Dal::B, Dal::C});
  double prev = std::numeric_limits<double>::infinity();
  for (int n = 1; n <= 6; ++n) {
    const double pfh = pfh_plain(ts, {n}, CritLevel::HI);
    EXPECT_LT(pfh, prev) << "n = " << n;
    prev = pfh;
  }
}

INSTANTIATE_TEST_SUITE_P(FailureProbs, PfhMonotone,
                         ::testing::Values(1e-2, 1e-3, 1e-5, 1e-7));

TEST(Survival, SingleTaskHandValue) {
  // One HI task, one round in [0, t], trigger prob f^1 = 0.1:
  // R = (1 - 0.1)^1 = 0.9.
  FtTaskSet ts({make("h", 100, 10, Dal::B, 0.1),
                make("l", 100, 10, Dal::C, 0.1)},
               {Dal::B, Dal::C});
  const auto r = survival_no_trigger(ts, {1, 0}, 100.0);
  EXPECT_NEAR(r.linear(), 0.9, 1e-12);
}

TEST(Survival, MultiplePerTaskRounds) {
  // Ten rounds: R = 0.9^10.
  FtTaskSet ts({make("h", 100, 10, Dal::B, 0.1)}, {Dal::B, Dal::C});
  const auto r = survival_no_trigger(ts, {1}, 910.0);
  // rounds = floor((910 - 10)/100) + 1 = 10.
  EXPECT_NEAR(r.linear(), std::pow(0.9, 10.0), 1e-12);
}

TEST(Survival, ZeroAdaptationProfileMeansCertainTrigger) {
  FtTaskSet ts({make("h", 100, 10, Dal::B, 0.1)}, {Dal::B, Dal::C});
  EXPECT_DOUBLE_EQ(survival_no_trigger(ts, {0}, 100.0).linear(), 0.0);
  // ... unless the window admits no round at all.
  EXPECT_DOUBLE_EQ(survival_no_trigger(ts, {0}, -1.0).linear(), 1.0);
}

TEST(Survival, DecreasesOverTime) {
  // Sec. 3.3: "R(N', t) will decrease with increasing t" — the LO tasks
  // will eventually be killed for sure.
  FtTaskSet ts({make("h", 100, 10, Dal::B, 0.05)}, {Dal::B, Dal::C});
  double prev = 1.0;
  for (double t = 0.0; t <= 5000.0; t += 500.0) {
    const double r = survival_no_trigger(ts, {1}, t).linear();
    EXPECT_LE(r, prev) << "t = " << t;
    prev = r;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(Survival, OnlyHiTasksContribute) {
  FtTaskSet with_lo({make("h", 100, 10, Dal::B, 0.1),
                     make("l", 10, 1, Dal::C, 0.5)},
                    {Dal::B, Dal::C});
  FtTaskSet without_lo({make("h", 100, 10, Dal::B, 0.1)}, {Dal::B, Dal::C});
  EXPECT_DOUBLE_EQ(survival_no_trigger(with_lo, {1, 0}, 910.0).linear(),
                   survival_no_trigger(without_lo, {1}, 910.0).linear());
}

TEST(PiPoints, Eq4Structure) {
  // T = D = 10, C = 2, n = 1, t = 100: r = floor(98/10)+1 = 10 rounds;
  // points: {100 - 2 - 10m + 10 : m = 1..9} u {100} = {18,...,98,100}.
  const FtTask task = make("x", 10, 2, Dal::C, 0.1);
  const auto pts = pi_points(task, 1, 100.0);
  ASSERT_EQ(pts.size(), 10u);
  EXPECT_DOUBLE_EQ(pts.front(), 18.0);
  EXPECT_DOUBLE_EQ(pts[8], 98.0);
  EXPECT_DOUBLE_EQ(pts.back(), 100.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1], pts[i]);  // strictly ascending
  }
}

TEST(PiPoints, ShortWindowHasOnlyT) {
  const FtTask task = make("x", 10, 2, Dal::C, 0.1);
  const auto pts = pi_points(task, 1, 5.0);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0], 5.0);
}

TEST(PiPoints, CountEqualsRounds) {
  const FtTask task = make("x", 35, 4, Dal::C, 0.1);
  for (double t = 0.0; t < 2000.0; t += 111.0) {
    const double r = rounds(task, 2, t);
    EXPECT_EQ(pi_points(task, 2, t).size(),
              static_cast<std::size_t>(std::max(r, 1.0)));
  }
}

/// Naive reference implementation of Eq. (5) in plain double arithmetic —
/// valid for moderate magnitudes (f >= 1e-4, short horizons).
double naive_pfh_killing(const FtTaskSet& ts, const PerTaskProfile& n,
                         const PerTaskProfile& n_adapt, double os_hours) {
  const Millis t = hours_to_millis(os_hours);
  const auto naive_r = [&](Millis alpha) {
    double r = 1.0;
    for (std::size_t j = 0; j < ts.size(); ++j) {
      if (ts.crit_of(j) != CritLevel::HI) continue;
      const double rj = std::max(
          std::floor((alpha - n_adapt[j] * ts[j].wcet) / ts[j].period) + 1.0,
          0.0);
      r *= std::pow(1.0 - std::pow(ts[j].failure_prob, n_adapt[j]), rj);
    }
    return r;
  };
  double sum = 0.0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts.crit_of(i) != CritLevel::LO) continue;
    for (const Millis alpha : pi_points(ts[i], n[i], t)) {
      const double r = alpha <= 0.0 ? 1.0 : naive_r(alpha);
      sum += 1.0 - r * (1.0 - std::pow(ts[i].failure_prob, n[i]));
    }
  }
  return sum / os_hours;
}

TEST(PfhKilling, MatchesNaiveReferenceAtModerateMagnitudes) {
  FtTaskSet ts({make("h1", 100, 10, Dal::B, 1e-3),
                make("h2", 70, 5, Dal::B, 1e-3),
                make("l1", 120, 12, Dal::C, 1e-3),
                make("l2", 90, 9, Dal::C, 1e-3)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 2, 1);
  const PerTaskProfile na = uniform_profile(ts, 1, 0);
  KillingBoundOptions opt;
  opt.os_hours = 0.002;  // 7.2 seconds: ~70 rounds per task
  const double lib = pfh_lo_killing(ts, n, na, opt);
  const double ref = naive_pfh_killing(ts, n, na, opt.os_hours);
  EXPECT_NEAR(lib, ref, std::abs(ref) * 1e-9);
}

TEST(PfhKilling, NoHiTasksReducesToPlainBound) {
  // With no HI task the kill trigger never fires (R = 1), leaving exactly
  // the plain per-round failures f^n.
  FtTaskSet ts({make("l1", 100, 10, Dal::C, 1e-4),
                make("l2", 250, 10, Dal::C, 1e-4)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 1, 2);
  KillingBoundOptions opt;
  opt.os_hours = 1.0;
  const double killing = pfh_lo_killing(ts, n, n /*unused for LO*/, opt);
  const double plain = pfh_plain(ts, n, CritLevel::LO);
  EXPECT_NEAR(killing, plain, plain * 1e-9);
}

TEST(PfhKilling, MonotoneDecreasingInAdaptationProfile) {
  // Sec. 3.3: increasing n' -> LO tasks killed less often -> safer.
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-3),
                make("l", 150, 10, Dal::C, 1e-3)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 4, 2);
  KillingBoundOptions opt;
  opt.os_hours = 0.01;
  double prev = std::numeric_limits<double>::infinity();
  for (int na = 0; na < 4; ++na) {
    const double pfh =
        pfh_lo_killing(ts, n, uniform_profile(ts, na, 0), opt);
    EXPECT_LT(pfh, prev) << "n' = " << na;
    prev = pfh;
  }
}

TEST(PfhKilling, DominatesPlainBound) {
  // Killing can only hurt LO safety: bound >= the plain bound.
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-3),
                make("l", 150, 10, Dal::C, 1e-3)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 3, 2);
  KillingBoundOptions opt;
  opt.os_hours = 0.01;
  const double killing =
      pfh_lo_killing(ts, n, uniform_profile(ts, 2, 0), opt);
  EXPECT_GE(killing, pfh_plain(ts, n, CritLevel::LO));
}

TEST(PfhKilling, EarlyExitReturnsValueAboveThreshold) {
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-2),
                make("l", 150, 10, Dal::C, 1e-2)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 2, 1);
  KillingBoundOptions opt;
  opt.os_hours = 1.0;
  opt.early_exit_above = 1e-6;
  const double partial =
      pfh_lo_killing(ts, n, uniform_profile(ts, 1, 0), opt);
  EXPECT_GT(partial, 1e-6);  // proves the requirement is violated
}

TEST(Omega, Eq6HandValues) {
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-3),
                make("l", 100, 10, Dal::C, 1e-3)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 1, 2);
  // LO task, n=2, df=1, t=1000: r = floor((1000-20)/100)+1 = 10.
  EXPECT_NEAR(omega(ts, n, 1.0, 1000.0), 10.0 * 1e-6, 1e-15);
  // df=2 stretches the period: r = floor((1000-20)/200)+1 = 5.
  EXPECT_NEAR(omega(ts, n, 2.0, 1000.0), 5.0 * 1e-6, 1e-15);
}

TEST(Omega, NonPositiveHorizonIsZero) {
  FtTaskSet ts({make("l", 100, 10, Dal::C, 1e-3)}, {Dal::B, Dal::C});
  EXPECT_DOUBLE_EQ(omega(ts, {2}, 1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(omega(ts, {2}, 1.0, -50.0), 0.0);
}

TEST(Omega, DecreasingInDegradationFactor) {
  FtTaskSet ts({make("l1", 100, 10, Dal::C, 1e-3),
                make("l2", 130, 10, Dal::C, 1e-3)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 1, 2);
  double prev = std::numeric_limits<double>::infinity();
  for (const double df : {1.0, 1.5, 2.0, 4.0, 8.0}) {
    const double w = omega(ts, n, df, 50'000.0);
    EXPECT_LE(w, prev);
    prev = w;
  }
}

TEST(PfhDegradation, Eq7EqualsEq9AtFullTrigger) {
  // Lemma 3.4 proof: the bound is the t0 = t scenario of Eq. (9).
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-3),
                make("l", 150, 10, Dal::C, 1e-3)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 3, 2);
  const PerTaskProfile na = uniform_profile(ts, 2, 0);
  const double os = 0.01;
  const double eq7 = pfh_lo_degradation(ts, n, na, os);
  const double eq9 =
      pfh_lo_degradation_at(ts, n, na, 6.0, os, hours_to_millis(os));
  EXPECT_NEAR(eq7, eq9, std::abs(eq7) * 1e-12);
}

TEST(PfhDegradation, Eq9MonotoneInTriggerTime) {
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-3),
                make("l", 150, 10, Dal::C, 1e-3)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 3, 2);
  const PerTaskProfile na = uniform_profile(ts, 2, 0);
  const double os = 0.01;
  const Millis t = hours_to_millis(os);
  double prev = -1.0;
  for (double frac = 0.0; frac <= 1.0; frac += 0.125) {
    const double v = pfh_lo_degradation_at(ts, n, na, 6.0, os, frac * t);
    EXPECT_GE(v, prev) << "frac = " << frac;
    prev = v;
  }
}

TEST(PfhDegradation, NeverExceedsPlainBound) {
  // Sec. 3.4: "the PFH on the LO criticality level is decreased if service
  // degradation is adopted as compared to (2)".
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-3),
                make("l", 150, 10, Dal::C, 1e-3)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 3, 2);
  for (int na = 0; na < 3; ++na) {
    EXPECT_LE(pfh_lo_degradation(ts, n, uniform_profile(ts, na, 0), 1.0),
              pfh_plain(ts, n, CritLevel::LO));
  }
}

TEST(PfhDegradation, KillingHasStrongerSafetyImpact) {
  // The headline comparison of the paper (Sec. 5.1): for the same
  // adaptation profile, the killing bound dwarfs the degradation bound.
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-4),
                make("l", 150, 10, Dal::C, 1e-4)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 3, 2);
  const PerTaskProfile na = uniform_profile(ts, 2, 0);
  KillingBoundOptions opt;
  opt.os_hours = 1.0;
  const double kill = pfh_lo_killing(ts, n, na, opt);
  const double degrade = pfh_lo_degradation(ts, n, na, 1.0);
  EXPECT_GT(kill, degrade * 1e3);
}

TEST(PfhDegradation, MonotoneDecreasingInAdaptationProfile) {
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-3),
                make("l", 150, 10, Dal::C, 1e-3)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 4, 2);
  double prev = std::numeric_limits<double>::infinity();
  for (int na = 0; na < 4; ++na) {
    const double pfh =
        pfh_lo_degradation(ts, n, uniform_profile(ts, na, 0), 1.0);
    EXPECT_LT(pfh, prev) << "n' = " << na;
    prev = pfh;
  }
}

TEST(PfhDegradationAt, RejectsTriggerOutsideWindow) {
  FtTaskSet ts({make("h", 100, 10, Dal::B, 1e-3),
                make("l", 150, 10, Dal::C, 1e-3)},
               {Dal::B, Dal::C});
  const PerTaskProfile n = uniform_profile(ts, 2, 1);
  const PerTaskProfile na = uniform_profile(ts, 1, 0);
  EXPECT_THROW((void)pfh_lo_degradation_at(ts, n, na, 6.0, 0.001, -1.0),
               ContractViolation);
  EXPECT_THROW((void)pfh_lo_degradation_at(ts, n, na, 6.0, 0.001, 1e9),
               ContractViolation);
}

}  // namespace
}  // namespace ftmc::core
