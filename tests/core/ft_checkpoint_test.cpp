#include "ftmc/core/ft_checkpoint.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"
#include "ftmc/core/analysis.hpp"
#include "ftmc/core/conversion.hpp"
#include "ftmc/mcs/edf_vd.hpp"
#include "ftmc/prob/safe_math.hpp"

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal,
            double f = 1e-5) {
  return {name, t, t, c, dal, f};
}

FtTaskSet example31(Dal lo = Dal::D, double f = 1e-5) {
  return FtTaskSet({make("tau1", 60, 5, Dal::B, f),
                    make("tau2", 25, 4, Dal::B, f),
                    make("tau3", 40, 7, lo, f), make("tau4", 90, 6, lo, f),
                    make("tau5", 70, 8, lo, f)},
                   {Dal::B, lo});
}

/// k = 1, zero overhead: schemes equivalent to n-times re-execution.
std::vector<CheckpointScheme> reexec_schemes(const FtTaskSet& ts, int n_hi,
                                             int n_lo) {
  std::vector<CheckpointScheme> schemes(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    schemes[i] = {1,
                  (ts.crit_of(i) == CritLevel::HI ? n_hi : n_lo) - 1,
                  0.0};
  }
  return schemes;
}

TEST(CkptTriggerProb, DegeneratesToFPowerM) {
  // k = 1: P(faults >= m) = f^m exactly (the paper's trigger term).
  for (const double f : {1e-2, 1e-5}) {
    for (int m = 1; m <= 4; ++m) {
      EXPECT_NEAR(ckpt_trigger_prob(f, 1, 0.0, m), prob::pow_prob(f, m),
                  prob::pow_prob(f, m) * 1e-9);
    }
  }
  EXPECT_DOUBLE_EQ(ckpt_trigger_prob(0.5, 4, 0.0, 0), 1.0);
}

TEST(CkptTriggerProb, MonotoneInThreshold) {
  double prev = 2.0;
  for (int m = 0; m <= 5; ++m) {
    const double p = ckpt_trigger_prob(1e-2, 4, 0.0, m);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(CkptSurvival, DegeneratesToLemma32) {
  const FtTaskSet ts = example31();
  const auto schemes = reexec_schemes(ts, 3, 1);
  for (const double t : {1000.0, 60'000.0, 3.6e6}) {
    for (int m = 1; m <= 2; ++m) {
      const double general =
          ckpt_survival_no_trigger(ts, schemes, uniform_profile(ts, m, 0),
                                   t)
              .linear();
      const double paper =
          survival_no_trigger(ts, uniform_profile(ts, m, 0), t).linear();
      EXPECT_NEAR(general, paper, std::abs(paper) * 1e-9 + 1e-15)
          << "t = " << t << " m = " << m;
    }
  }
}

TEST(CkptPfhKilling, DegeneratesToEq5) {
  const FtTaskSet ts = example31(Dal::C, 1e-3);
  const auto schemes = reexec_schemes(ts, 3, 2);
  KillingBoundOptions opt;
  opt.os_hours = 0.01;
  const double paper =
      pfh_lo_killing(ts, uniform_profile(ts, 3, 2),
                     uniform_profile(ts, 2, 0), opt);
  const double general = ckpt_pfh_lo_killing(
      ts, schemes, uniform_profile(ts, 2, 0), 0.01);
  EXPECT_NEAR(general, paper, paper * 1e-9);
}

TEST(CkptPfhDegradation, DegeneratesToEq7) {
  const FtTaskSet ts = example31(Dal::C, 1e-3);
  const auto schemes = reexec_schemes(ts, 3, 2);
  const double paper = pfh_lo_degradation(ts, uniform_profile(ts, 3, 2),
                                          uniform_profile(ts, 2, 0), 0.01);
  const double general = ckpt_pfh_lo_degradation(
      ts, schemes, uniform_profile(ts, 2, 0), 0.01);
  EXPECT_NEAR(general, paper, paper * 1e-9);
}

TEST(CkptConversion, DegeneratesToLemma41) {
  const FtTaskSet ts = example31();
  const auto general = convert_to_mc_checkpointed(
      ts, reexec_schemes(ts, 3, 1), uniform_profile(ts, 2, 0));
  const auto paper = convert_to_mc(ts, 3, 1, 2);
  ASSERT_EQ(general.size(), paper.size());
  for (std::size_t i = 0; i < paper.size(); ++i) {
    EXPECT_DOUBLE_EQ(general[i].wcet_hi, paper[i].wcet_hi) << i;
    EXPECT_DOUBLE_EQ(general[i].wcet_lo, paper[i].wcet_lo) << i;
  }
}

TEST(CkptConversion, SegmentedBudgets) {
  // k = 4, R = 2, o = 0: seg = C/4; C(HI) = 6 * C/4 = 1.5C;
  // C(LO) at m = 1: (4 - 1 + 1) * C/4 = C.
  FtTaskSet ts({make("h", 100, 8, Dal::B)}, {Dal::B, Dal::C});
  const std::vector<CheckpointScheme> schemes = {{4, 2, 0.0}};
  const auto mc = convert_to_mc_checkpointed(ts, schemes, {1});
  EXPECT_DOUBLE_EQ(mc[0].wcet_hi, 12.0);
  EXPECT_DOUBLE_EQ(mc[0].wcet_lo, 8.0);
  // m = 0: C(LO) = 0; m = R + 1 = 3: C(LO) = C(HI).
  EXPECT_DOUBLE_EQ(convert_to_mc_checkpointed(ts, schemes, {0})[0].wcet_lo,
                   0.0);
  EXPECT_DOUBLE_EQ(convert_to_mc_checkpointed(ts, schemes, {3})[0].wcet_lo,
                   12.0);
  EXPECT_THROW(
      (void)convert_to_mc_checkpointed(ts, schemes, {4}),
      ContractViolation);
}

TEST(CkptFts, DegenerateMatchesReexecutionFts) {
  // k = 1 checkpointed FT-S must reach the same verdict and profiles as
  // the paper's FT-S on Example 3.1 (R = n - 1, m = n').
  const FtTaskSet ts = example31();
  CkptFtsConfig ckpt;
  ckpt.segments = 1;
  ckpt.adaptation.kind = mcs::AdaptationKind::kKilling;
  ckpt.adaptation.os_hours = 1.0;
  const CkptFtsResult g = ft_schedule_checkpointed(ts, ckpt);

  FtsConfig paper;
  paper.adaptation.kind = mcs::AdaptationKind::kKilling;
  paper.adaptation.os_hours = 1.0;
  const FtsResult r = ft_schedule(ts, paper);

  ASSERT_EQ(g.success, r.success);
  ASSERT_TRUE(g.success);
  EXPECT_EQ(g.r_hi + 1, r.n_hi);  // R = n - 1
  EXPECT_EQ(g.r_lo + 1, r.n_lo);
  EXPECT_EQ(g.m_adapt, r.n_adapt);
  EXPECT_NEAR(g.pfh_hi, r.pfh_hi, r.pfh_hi * 1e-9);
}

TEST(CkptFts, SegmentationRescuesUnschedulableSet) {
  // Inflate Example 3.1 so killing alone cannot save it under full
  // re-execution, but k = 4 checkpointing (worst case 1.5C vs 3C) can.
  FtTaskSet ts({make("tau1", 60, 9, Dal::B), make("tau2", 25, 7, Dal::B),
                make("tau3", 40, 8, Dal::D), make("tau4", 90, 9, Dal::D),
                make("tau5", 70, 9, Dal::D)},
               {Dal::B, Dal::D});
  FtsConfig paper;
  paper.adaptation.kind = mcs::AdaptationKind::kKilling;
  paper.adaptation.os_hours = 1.0;
  ASSERT_FALSE(ft_schedule(ts, paper).success);

  CkptFtsConfig ckpt;
  ckpt.segments = 4;
  ckpt.adaptation.kind = mcs::AdaptationKind::kKilling;
  ckpt.adaptation.os_hours = 1.0;
  const CkptFtsResult g = ft_schedule_checkpointed(ts, ckpt);
  ASSERT_TRUE(g.success) << to_string(g.failure);
  EXPECT_TRUE(mcs::EdfVdTest{}.schedulable(g.converted));
  EXPECT_LT(g.pfh_hi, 1e-7);
}

TEST(CkptFts, OverheadCanDefeatTheGain) {
  // Same set, but 20% checkpoint overhead per segment at k = 8 bloats
  // every budget past feasibility again.
  FtTaskSet ts({make("tau1", 60, 9, Dal::B), make("tau2", 25, 7, Dal::B),
                make("tau3", 40, 8, Dal::D), make("tau4", 90, 9, Dal::D),
                make("tau5", 70, 9, Dal::D)},
               {Dal::B, Dal::D});
  CkptFtsConfig ckpt;
  ckpt.segments = 8;
  ckpt.overhead_fraction = 0.2;
  ckpt.adaptation.kind = mcs::AdaptationKind::kKilling;
  ckpt.adaptation.os_hours = 1.0;
  EXPECT_FALSE(ft_schedule_checkpointed(ts, ckpt).success);
}

TEST(CkptFts, SafetyGateStillGuardsLevelC) {
  // Checkpointing changes budgets, not the killing-vs-safety story:
  // level C LO tasks still cannot be killed on a long mission.
  CkptFtsConfig ckpt;
  ckpt.segments = 4;
  ckpt.adaptation.kind = mcs::AdaptationKind::kKilling;
  ckpt.adaptation.os_hours = 10.0;
  const CkptFtsResult g =
      ft_schedule_checkpointed(example31(Dal::C), ckpt);
  EXPECT_FALSE(g.success);
  EXPECT_TRUE(g.failure == FtsFailure::kAdaptationUnsafe ||
              g.failure == FtsFailure::kUnschedulable);
}

}  // namespace
}  // namespace ftmc::core
