/// Tests for footnote 1 of the paper: when execution attempts may finish
/// earlier than C_i, the busy term n*C_i must be dropped from the round
/// counts of Eqs. (1), (4), (6) — yielding more rounds, i.e. a larger
/// (still safe) bound. Verifies the kZero assumption is threaded through
/// every analysis entry point.
#include <gtest/gtest.h>

#include "ftmc/core/ft_scheduler.hpp"

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal,
            double f = 1e-3) {
  return {name, t, t, c, dal, f};
}

/// WCETs comparable to periods so the busy term actually matters.
FtTaskSet chunky() {
  return FtTaskSet({make("h", 100, 40, Dal::B), make("l", 150, 50, Dal::C)},
                   {Dal::B, Dal::C});
}

TEST(ExecAssumption, PlainBoundNeverSmallerUnderZero) {
  const FtTaskSet ts = chunky();
  for (int n = 1; n <= 4; ++n) {
    const PerTaskProfile p = uniform_profile(ts, n, n);
    for (const CritLevel level : {CritLevel::HI, CritLevel::LO}) {
      EXPECT_GE(pfh_plain(ts, p, level, ExecAssumption::kZero),
                pfh_plain(ts, p, level, ExecAssumption::kFullWcet))
          << "n = " << n;
    }
  }
}

TEST(ExecAssumption, ZeroAssumptionChangesRoundCountAtBoundary) {
  // t chosen between the two round thresholds: full-WCET counts 1 round,
  // zero-assumption counts 2.
  const FtTask t = make("x", 100, 40, Dal::B);
  // Rounds under full WCET with n=2: floor((t - 80)/100)+1; at t = 150:
  // floor(0.7)+1 = 1. Under kZero: floor(1.5)+1 = 2.
  EXPECT_DOUBLE_EQ(rounds(t, 2, 150.0, ExecAssumption::kFullWcet), 1.0);
  EXPECT_DOUBLE_EQ(rounds(t, 2, 150.0, ExecAssumption::kZero), 2.0);
}

TEST(ExecAssumption, SurvivalNeverLargerUnderZero) {
  // More rounds -> more trigger opportunities -> smaller R.
  const FtTaskSet ts = chunky();
  const PerTaskProfile na = uniform_profile(ts, 1, 0);
  for (double t = 50.0; t <= 1000.0; t += 130.0) {
    EXPECT_LE(
        survival_no_trigger(ts, na, t, ExecAssumption::kZero).linear(),
        survival_no_trigger(ts, na, t, ExecAssumption::kFullWcet).linear()
            + 1e-15)
        << "t = " << t;
  }
}

TEST(ExecAssumption, KillingBoundNeverSmallerUnderZero) {
  const FtTaskSet ts = chunky();
  const PerTaskProfile n = uniform_profile(ts, 3, 2);
  const PerTaskProfile na = uniform_profile(ts, 1, 0);
  KillingBoundOptions full;
  full.os_hours = 0.003;
  KillingBoundOptions zero = full;
  zero.exec = ExecAssumption::kZero;
  EXPECT_GE(pfh_lo_killing(ts, n, na, zero),
            pfh_lo_killing(ts, n, na, full) * (1.0 - 1e-9));
}

TEST(ExecAssumption, DegradationBoundNeverSmallerUnderZero) {
  const FtTaskSet ts = chunky();
  const PerTaskProfile n = uniform_profile(ts, 3, 2);
  const PerTaskProfile na = uniform_profile(ts, 1, 0);
  EXPECT_GE(
      pfh_lo_degradation(ts, n, na, 0.003, ExecAssumption::kZero),
      pfh_lo_degradation(ts, n, na, 0.003, ExecAssumption::kFullWcet) *
          (1.0 - 1e-9));
}

TEST(ExecAssumption, MinProfilesCanGrowUnderZero) {
  // The larger zero-assumption bound can demand one more re-execution;
  // it must never demand fewer.
  const FtTaskSet ts = chunky();
  const auto reqs = SafetyRequirements::do178b();
  for (const CritLevel level : {CritLevel::HI, CritLevel::LO}) {
    const auto full =
        min_reexec_profile(ts, level, reqs, ExecAssumption::kFullWcet);
    const auto zero =
        min_reexec_profile(ts, level, reqs, ExecAssumption::kZero);
    ASSERT_TRUE(full.has_value());
    ASSERT_TRUE(zero.has_value());
    EXPECT_GE(*zero, *full);
  }
}

TEST(ExecAssumption, FtScheduleHonorsExecConfig) {
  // End-to-end: the config flag reaches both the profile search and the
  // reported bounds.
  const FtTaskSet ts = chunky();
  FtsConfig full;
  full.adaptation.kind = mcs::AdaptationKind::kDegradation;
  full.adaptation.degradation_factor = 6.0;
  full.adaptation.os_hours = 1.0;
  FtsConfig zero = full;
  zero.exec = ExecAssumption::kZero;
  const FtsResult rf = ft_schedule(ts, full);
  const FtsResult rz = ft_schedule(ts, zero);
  if (rf.success && rz.success) {
    EXPECT_GE(rz.pfh_hi, rf.pfh_hi * (1.0 - 1e-9));
  }
  // The zero assumption can only lose schedulability, never gain it
  // (same conversion, same or stricter profiles).
  if (!rf.success) {
    EXPECT_FALSE(rz.success && rz.n_hi < rf.n_hi);
  }
}

}  // namespace
}  // namespace ftmc::core
