#include "ftmc/core/fault_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ftmc/common/contracts.hpp"

namespace ftmc::core {
namespace {

TEST(FaultModel, ZeroRateNeverFails) {
  EXPECT_DOUBLE_EQ(attempt_failure_prob(0.0, 10.0), 0.0);
}

TEST(FaultModel, LinearRegimeForSmallRates) {
  // lambda * C << 1: f ~ lambda * C. 1 fault/hour, 3.6 ms job:
  // f ~ 3.6 / 3.6e6 = 1e-6.
  EXPECT_NEAR(attempt_failure_prob(1.0, 3.6), 1e-6, 1e-12);
}

TEST(FaultModel, SaturatesForLongJobs) {
  // 1000 faults/hour, 1 hour job: f = 1 - e^-1000 ~ 1.
  EXPECT_NEAR(attempt_failure_prob(1000.0, kMillisPerHour), 1.0, 1e-12);
}

TEST(FaultModel, RoundTripRateProbability) {
  for (const double lambda : {1e-3, 1.0, 100.0}) {
    for (const Millis c : {0.5, 5.0, 50.0}) {
      const double f = attempt_failure_prob(lambda, c);
      EXPECT_NEAR(faults_per_hour_from_prob(f, c), lambda,
                  lambda * 1e-9);
    }
  }
}

TEST(FaultModel, PaperUniformFEquivalentRate) {
  // f = 1e-5 on a 5 ms task corresponds to ~7.2 faults/hour; the same
  // rate on a 4 ms task gives a proportionally smaller f.
  const double lambda = faults_per_hour_from_prob(1e-5, 5.0);
  EXPECT_NEAR(lambda, 1e-5 / 5.0 * kMillisPerHour, lambda * 1e-4);
  EXPECT_NEAR(attempt_failure_prob(lambda, 4.0), 0.8e-5, 1e-10);
}

TEST(FaultModel, MonotoneInBothArguments) {
  double prev = 0.0;
  for (const double lambda : {0.1, 1.0, 10.0, 100.0}) {
    const double f = attempt_failure_prob(lambda, 10.0);
    EXPECT_GT(f, prev);
    prev = f;
  }
  prev = 0.0;
  for (const Millis c : {1.0, 10.0, 100.0, 1000.0}) {
    const double f = attempt_failure_prob(10.0, c);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(FaultModel, DeriveAssignsLengthProportionalProbs) {
  FtTaskSet ts({FtTask{"short", 100, 100, 2, Dal::B, 0.0},
                FtTask{"long", 100, 100, 20, Dal::C, 0.0}},
               {Dal::B, Dal::C});
  const FtTaskSet derived = derive_failure_probs(ts, 36.0);
  // 36 faults/hour = 1e-5 per ms: f(short) ~ 2e-5, f(long) ~ 2e-4 (the
  // exponential second-order term -lambda^2 C^2/2 shaves ~1e-4 relative).
  EXPECT_NEAR(derived[0].failure_prob, 2e-5, 2e-10);
  EXPECT_NEAR(derived[1].failure_prob, 2e-4, 2e-8);
  EXPECT_GT(derived[1].failure_prob, derived[0].failure_prob);
  // Original untouched (value semantics).
  EXPECT_DOUBLE_EQ(ts[0].failure_prob, 0.0);
}

TEST(FaultModel, RejectsBadArguments) {
  EXPECT_THROW((void)attempt_failure_prob(-1.0, 10.0), ContractViolation);
  EXPECT_THROW((void)attempt_failure_prob(1.0, 0.0), ContractViolation);
  EXPECT_THROW((void)faults_per_hour_from_prob(1.0, 10.0),
               ContractViolation);
  EXPECT_THROW((void)faults_per_hour_from_prob(-0.1, 10.0),
               ContractViolation);
}

}  // namespace
}  // namespace ftmc::core
