#include "ftmc/core/conversion.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"
#include "ftmc/mcs/edf_vd.hpp"

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal,
            double f = 1e-5) {
  return {name, t, t, c, dal, f};
}

FtTaskSet example31() {
  return FtTaskSet({make("tau1", 60, 5, Dal::B), make("tau2", 25, 4, Dal::B),
                    make("tau3", 40, 7, Dal::D), make("tau4", 90, 6, Dal::D),
                    make("tau5", 70, 8, Dal::D)},
                   {Dal::B, Dal::D});
}

TEST(Conversion, ReproducesPaperTable3) {
  // Example 4.1: n_HI = 3, n'_HI = 2, n_LO = 1 yields Table 3.
  const mcs::McTaskSet mc = convert_to_mc(example31(), 3, 1, 2);
  ASSERT_EQ(mc.size(), 5u);

  EXPECT_EQ(mc[0].crit, CritLevel::HI);
  EXPECT_DOUBLE_EQ(mc[0].wcet_hi, 15.0);  // 3 * 5
  EXPECT_DOUBLE_EQ(mc[0].wcet_lo, 10.0);  // 2 * 5
  EXPECT_EQ(mc[1].crit, CritLevel::HI);
  EXPECT_DOUBLE_EQ(mc[1].wcet_hi, 12.0);  // 3 * 4
  EXPECT_DOUBLE_EQ(mc[1].wcet_lo, 8.0);   // 2 * 4

  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(mc[i].crit, CritLevel::LO);
    EXPECT_DOUBLE_EQ(mc[i].wcet_hi, mc[i].wcet_lo);
  }
  EXPECT_DOUBLE_EQ(mc[2].wcet_lo, 7.0);
  EXPECT_DOUBLE_EQ(mc[3].wcet_lo, 6.0);
  EXPECT_DOUBLE_EQ(mc[4].wcet_lo, 8.0);
}

TEST(Conversion, Table3IsEdfVdSchedulable) {
  // The punchline of Example 4.1: the converted set passes EDF-VD.
  const mcs::McTaskSet mc = convert_to_mc(example31(), 3, 1, 2);
  EXPECT_TRUE(mcs::EdfVdTest{}.schedulable(mc));
}

TEST(Conversion, PreservesTimingAndNames) {
  const FtTaskSet ts = example31();
  const mcs::McTaskSet mc = convert_to_mc(ts, 3, 1, 2);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(mc[i].name, ts[i].name);
    EXPECT_DOUBLE_EQ(mc[i].period, ts[i].period);
    EXPECT_DOUBLE_EQ(mc[i].deadline, ts[i].deadline);
  }
}

TEST(Conversion, LoTasksScaleWithTheirOwnProfile) {
  const mcs::McTaskSet mc = convert_to_mc(example31(), 3, 2, 1);
  EXPECT_DOUBLE_EQ(mc[2].wcet_lo, 14.0);  // 2 * 7
  EXPECT_DOUBLE_EQ(mc[2].wcet_hi, 14.0);
}

TEST(Conversion, AdaptationZeroGivesZeroLoBudget) {
  // n' = 0: the switch fires on any HI execution; C(LO) = 0.
  const mcs::McTaskSet mc = convert_to_mc(example31(), 3, 1, 0);
  EXPECT_DOUBLE_EQ(mc[0].wcet_lo, 0.0);
  EXPECT_DOUBLE_EQ(mc[1].wcet_lo, 0.0);
  EXPECT_NO_THROW(mc.validate());
}

TEST(Conversion, AdaptationEqualToNMeansNoSwitch) {
  const mcs::McTaskSet mc = convert_to_mc(example31(), 3, 1, 3);
  EXPECT_DOUBLE_EQ(mc[0].wcet_lo, mc[0].wcet_hi);
}

TEST(Conversion, RejectsAdaptationAboveN) {
  EXPECT_THROW(convert_to_mc(example31(), 3, 1, 4), ContractViolation);
}

TEST(Conversion, RejectsZeroReexecutionProfile) {
  EXPECT_THROW(convert_to_mc(example31(), 0, 1, 0), ContractViolation);
  EXPECT_THROW(convert_to_mc(example31(), 3, 0, 2), ContractViolation);
}

TEST(Conversion, PerTaskProfilesSupported) {
  // Heterogeneous profiles (the general Lemma 4.1 form, before the
  // uniform restriction of Sec. 4.2).
  const FtTaskSet ts = example31();
  PerTaskProfile n = {4, 2, 1, 1, 2};
  PerTaskProfile na = {1, 1, 0, 0, 0};
  const mcs::McTaskSet mc = convert_to_mc(ts, n, na);
  EXPECT_DOUBLE_EQ(mc[0].wcet_hi, 20.0);
  EXPECT_DOUBLE_EQ(mc[0].wcet_lo, 5.0);
  EXPECT_DOUBLE_EQ(mc[1].wcet_hi, 8.0);
  EXPECT_DOUBLE_EQ(mc[1].wcet_lo, 4.0);
  EXPECT_DOUBLE_EQ(mc[4].wcet_hi, 16.0);
}

TEST(Conversion, ConversionIsConservative) {
  // Utilization identity: U_HI^HI of the converted set equals
  // n_HI * U_HI of the original, etc. — the bridge Algorithm 2 exploits.
  const FtTaskSet ts = example31();
  const mcs::McTaskSet mc = convert_to_mc(ts, 3, 1, 2);
  EXPECT_NEAR(mc.utilization(CritLevel::HI, CritLevel::HI),
              3.0 * ts.utilization(CritLevel::HI), 1e-12);
  EXPECT_NEAR(mc.utilization(CritLevel::HI, CritLevel::LO),
              2.0 * ts.utilization(CritLevel::HI), 1e-12);
  EXPECT_NEAR(mc.utilization(CritLevel::LO, CritLevel::LO),
              1.0 * ts.utilization(CritLevel::LO), 1e-12);
}

}  // namespace
}  // namespace ftmc::core
