#include "ftmc/core/partitioned.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal,
            double f = 1e-5) {
  return {name, t, t, c, dal, f};
}

FtTaskSet example31(Dal lo = Dal::D) {
  return FtTaskSet({make("tau1", 60, 5, Dal::B), make("tau2", 25, 4, Dal::B),
                    make("tau3", 40, 7, lo), make("tau4", 90, 6, lo),
                    make("tau5", 70, 8, lo)},
                   {Dal::B, lo});
}

PartitionedConfig config(int cores,
                         mcs::AdaptationKind kind =
                             mcs::AdaptationKind::kKilling) {
  PartitionedConfig c;
  c.cores = cores;
  c.fts.adaptation.kind = kind;
  c.fts.adaptation.os_hours = 1.0;
  c.fts.adaptation.degradation_factor = 6.0;
  return c;
}

TEST(MakeSubset, ExtractsTasksAndMapping) {
  const FtTaskSet ts = example31();
  const FtTaskSet sub = make_subset(ts, {0, 3});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0].name, "tau1");
  EXPECT_EQ(sub[1].name, "tau4");
  EXPECT_EQ(sub.mapping().hi, ts.mapping().hi);
  EXPECT_THROW((void)make_subset(ts, {99}), ContractViolation);
}

TEST(Partitioned, SingleCoreMatchesUniprocessorVerdict) {
  const FtTaskSet ts = example31();
  const PartitionedResult p = ft_schedule_partitioned(ts, config(1));
  const FtsResult u = ft_schedule(ts, config(1).fts);
  EXPECT_EQ(p.success, u.success);
  EXPECT_EQ(p.n_hi, u.n_hi);
  EXPECT_EQ(p.n_lo, u.n_lo);
  ASSERT_EQ(p.per_core.size(), 1u);
  EXPECT_EQ(p.per_core[0].n_adapt, u.n_adapt);
}

TEST(Partitioned, TwoCoresScheduleDoubleLoad) {
  // Two copies of Example 3.1's workload: hopeless on one core (worst
  // case 2.17), fine on two.
  FtTaskSet ts = example31();
  FtTaskSet doubled = example31();
  for (const FtTask& t : ts.tasks()) {
    FtTask copy = t;
    copy.name += "_b";
    doubled.add(copy);
  }
  EXPECT_FALSE(ft_schedule_partitioned(doubled, config(1)).success);
  const PartitionedResult p = ft_schedule_partitioned(doubled, config(2));
  ASSERT_TRUE(p.success) << to_string(p.failure);
  // Every task got a core in range.
  for (const int c : p.assignment) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 2);
  }
  // Both cores nontrivially loaded.
  EXPECT_GT(p.per_core[0].converted.size() , 0u);
  EXPECT_GT(p.per_core[1].converted.size() , 0u);
}

TEST(Partitioned, SystemPfhSumsPerCoreContributions) {
  const FtTaskSet base = example31();
  FtTaskSet doubled = base;
  for (const FtTask& t : base.tasks()) {
    FtTask copy = t;
    copy.name += "_b";
    doubled.add(copy);
  }
  const PartitionedResult p = ft_schedule_partitioned(doubled, config(2));
  ASSERT_TRUE(p.success);
  double sum = 0.0;
  for (const auto& core : p.per_core) sum += core.pfh_lo;
  EXPECT_NEAR(p.pfh_lo, sum, 1e-15);
  EXPECT_GT(p.pfh_hi, 0.0);
}

TEST(Partitioned, GlobalProfilesNotWeakenedByPartitioning) {
  // The per-level PFH requirement is global: the partitioned run must
  // use the same n_HI as the uniprocessor analysis even though each
  // core's subset alone would need less.
  const FtTaskSet base = example31();
  FtTaskSet doubled = base;
  for (const FtTask& t : base.tasks()) {
    FtTask copy = t;
    copy.name += "_b";
    doubled.add(copy);
  }
  const PartitionedResult p = ft_schedule_partitioned(doubled, config(2));
  ASSERT_TRUE(p.success);
  const auto n_global = min_reexec_profile(doubled, CritLevel::HI,
                                           SafetyRequirements::do178b());
  ASSERT_TRUE(n_global.has_value());
  EXPECT_EQ(p.n_hi, *n_global);
  // pfh(HI) of the whole system still meets level B.
  EXPECT_LT(p.pfh_hi, 1e-7);
}

TEST(Partitioned, LevelCKillingStillUnsafeOnManyCores) {
  // Extra cores buy schedulability, never safety: killing level C tasks
  // violates their PFH regardless of the core count.
  FtTaskSet ts = example31(Dal::C);
  PartitionedConfig cfg = config(4);
  cfg.fts.adaptation.os_hours = 10.0;
  const PartitionedResult p = ft_schedule_partitioned(ts, cfg);
  EXPECT_FALSE(p.success);
  EXPECT_EQ(p.failure, FtsFailure::kAdaptationUnsafe);
}

TEST(Partitioned, DegradationOnTwoCores) {
  const FtTaskSet base = example31(Dal::C);
  FtTaskSet doubled = base;
  for (const FtTask& t : base.tasks()) {
    FtTask copy = t;
    copy.name += "_b";
    doubled.add(copy);
  }
  PartitionedConfig cfg = config(4, mcs::AdaptationKind::kDegradation);
  const PartitionedResult p = ft_schedule_partitioned(doubled, cfg);
  // n_HI = n_LO = 3 at level C: the doubled worst-case load is ~3.6, so
  // four cores carry what one (or three) cannot.
  EXPECT_TRUE(p.success) << to_string(p.failure);
  EXPECT_LT(p.pfh_lo, 1e-5);
}

TEST(Partitioned, EmptyCoresAreBenign) {
  const FtTaskSet ts = example31();
  const PartitionedResult p = ft_schedule_partitioned(ts, config(8));
  ASSERT_TRUE(p.success);
  EXPECT_EQ(p.per_core.size(), 8u);
  // Unused cores contribute nothing.
  double used = 0.0;
  for (const auto& core : p.per_core) {
    used += core.converted.size();
    EXPECT_TRUE(core.success);
  }
  EXPECT_EQ(static_cast<std::size_t>(used), ts.size());
}

TEST(Partitioned, RejectsZeroCores) {
  EXPECT_THROW((void)ft_schedule_partitioned(example31(), config(0)),
               ContractViolation);
}

TEST(Partitioned, ImpossibleSafetyFailsEarly) {
  FtTaskSet ts({make("h", 100, 10, Dal::A, 0.9), make("l", 100, 1, Dal::E)},
               {Dal::A, Dal::E});
  const PartitionedResult p = ft_schedule_partitioned(ts, config(4));
  EXPECT_FALSE(p.success);
  EXPECT_EQ(p.failure, FtsFailure::kHiSafetyInfeasible);
}

}  // namespace
}  // namespace ftmc::core
