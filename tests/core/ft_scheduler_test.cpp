#include "ftmc/core/ft_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ftmc/mcs/edf_vd.hpp"
#include "ftmc/mcs/fixed_priority.hpp"

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal,
            double f = 1e-5) {
  return {name, t, t, c, dal, f};
}

FtTaskSet example31(Dal lo = Dal::D) {
  return FtTaskSet({make("tau1", 60, 5, Dal::B), make("tau2", 25, 4, Dal::B),
                    make("tau3", 40, 7, lo), make("tau4", 90, 6, lo),
                    make("tau5", 70, 8, lo)},
                   {Dal::B, lo});
}

FtsConfig killing_config() {
  FtsConfig cfg;
  cfg.adaptation.kind = mcs::AdaptationKind::kKilling;
  cfg.adaptation.os_hours = 1.0;
  return cfg;
}

TEST(FtSchedule, Example31SucceedsWithKilling) {
  // The end-to-end story of Examples 3.1/4.1: unschedulable without
  // adaptation, schedulable by FT-EDF-VD with killing.
  const FtsResult r = ft_schedule(example31(), killing_config());
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.failure, FtsFailure::kNone);
  EXPECT_EQ(r.n_hi, 3);
  EXPECT_EQ(r.n_lo, 1);
  EXPECT_FALSE(r.feasible_without_adaptation);  // U = 1.08595 > 1
  ASSERT_TRUE(r.n1_hi.has_value());
  EXPECT_EQ(*r.n1_hi, 0);  // level D tasks: killing is free
  ASSERT_TRUE(r.n2_hi.has_value());
  EXPECT_EQ(r.n_adapt, *r.n2_hi);
  EXPECT_LE(r.u_mc, 1.0);
  EXPECT_NEAR(r.pfh_hi, 2.04e-10, 1e-14);
  EXPECT_EQ(r.scheduler_name, "EDF-VD");
  EXPECT_EQ(r.converted.size(), 5u);
}

TEST(FtSchedule, Example31ChoosesMaximalSchedulableAdaptation) {
  const FtsResult r = ft_schedule(example31(), killing_config());
  ASSERT_TRUE(r.success);
  // Theorem 4.1 argument: n' = n2 is schedulable, n2 + 1 is not (or is
  // capped at n_hi).
  const double u_hi = example31().utilization(CritLevel::HI);
  const double u_lo = example31().utilization(CritLevel::LO);
  EXPECT_LE(umc_closed_form(u_hi, u_lo, r.n_hi, r.n_lo, r.n_adapt,
                            mcs::AdaptationKind::kKilling, 1.0),
            1.0);
  if (r.n_adapt < r.n_hi) {
    EXPECT_GT(umc_closed_form(u_hi, u_lo, r.n_hi, r.n_lo, r.n_adapt + 1,
                              mcs::AdaptationKind::kKilling, 1.0),
              1.0);
  }
}

TEST(FtSchedule, Example31WithPaperKillingProfile) {
  // The paper's narrative kills LO tasks "when any HI criticality task
  // instance executes a third time", i.e. n' = 2, and shows Table 3
  // schedulable. Our maximal search must find at least that.
  const FtsResult r = ft_schedule(example31(), killing_config());
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.n_adapt, 2);
}

TEST(FtSchedule, ClosedFormAndGenericSearchAgree) {
  FtsConfig closed = killing_config();
  closed.use_closed_form_umc = true;
  FtsConfig generic = killing_config();
  generic.use_closed_form_umc = false;

  for (const Dal lo : {Dal::D, Dal::C}) {
    const FtTaskSet ts = example31(lo);
    const FtsResult a = ft_schedule(ts, closed);
    const FtsResult b = ft_schedule(ts, generic);
    EXPECT_EQ(a.success, b.success) << "LO = " << to_string(lo);
    if (a.success) {
      EXPECT_EQ(a.n_adapt, b.n_adapt);
      EXPECT_EQ(a.n_hi, b.n_hi);
    }
  }
}

TEST(FtSchedule, LevelCKillingFailsOnSafety) {
  // With LO = C and a long mission, killing violates pfh(LO) for every
  // schedulable adaptation profile — the Fig. 3b finding.
  FtsConfig cfg = killing_config();
  cfg.adaptation.os_hours = 10.0;
  const FtsResult r = ft_schedule(example31(Dal::C), cfg);
  EXPECT_FALSE(r.success);
  EXPECT_TRUE(r.failure == FtsFailure::kAdaptationUnsafe ||
              r.failure == FtsFailure::kUnschedulable);
}

TEST(FtSchedule, Example31AtLevelCIsInfeasibleEvenWithDegradation) {
  // With LO = C the level C tasks themselves need n_LO = 3 (their plain
  // PFH at n = 2 is 1.8e-5 > 1e-5), which pushes U_LO^LO = 3 * 0.356 above
  // 1: no adaptation can help. FT-S must report this, not mis-succeed.
  FtsConfig cfg;
  cfg.adaptation.kind = mcs::AdaptationKind::kDegradation;
  cfg.adaptation.degradation_factor = 6.0;
  cfg.adaptation.os_hours = 10.0;
  const FtsResult r = ft_schedule(example31(Dal::C), cfg);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FtsFailure::kUnschedulable);
  EXPECT_EQ(r.n_lo, 3);
}

TEST(FtSchedule, LevelCDegradationCanSucceed) {
  // A lighter variant of Example 3.1 (LO WCETs halved): level C safety
  // forces n_LO = 3, and degradation makes the system schedulable where
  // the worst case (3 * U_HI + 3 * U_LO = 1.264) is not.
  FtTaskSet ts({make("tau1", 60, 5, Dal::B), make("tau2", 25, 4, Dal::B),
                make("tau3", 40, 3.5, Dal::C), make("tau4", 90, 3, Dal::C),
                make("tau5", 70, 4, Dal::C)},
               {Dal::B, Dal::C});
  FtsConfig cfg;
  cfg.adaptation.kind = mcs::AdaptationKind::kDegradation;
  cfg.adaptation.degradation_factor = 6.0;
  cfg.adaptation.os_hours = 10.0;
  const FtsResult r = ft_schedule(ts, cfg);
  ASSERT_TRUE(r.success) << to_string(r.failure);
  EXPECT_FALSE(r.feasible_without_adaptation);
  EXPECT_LT(r.pfh_lo, 1e-5);
  EXPECT_NE(r.scheduler_name.find("degradation"), std::string::npos);
}

TEST(FtSchedule, PreferNoAdaptationShortcut) {
  // A light system: worst-case EDF fits, so with the Appendix C policy no
  // adaptation is used at all.
  FtTaskSet ts({make("h", 100, 2, Dal::B), make("l", 100, 5, Dal::C)},
               {Dal::B, Dal::C});
  FtsConfig cfg = killing_config();
  cfg.prefer_no_adaptation = true;
  const FtsResult r = ft_schedule(ts, cfg);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(r.feasible_without_adaptation);
  EXPECT_EQ(r.n_adapt, r.n_hi);  // mode switch can never fire
  EXPECT_EQ(r.scheduler_name, "EDF(worst-case)");
}

TEST(FtSchedule, HopelesslyOverloadedFailsUnschedulable) {
  // LO = D so that safety is trivially met and the failure is purely a
  // schedulability one (U_HI^HI alone is 2.4).
  FtTaskSet ts({make("h1", 10, 4, Dal::B), make("h2", 10, 4, Dal::B),
                make("l", 10, 4, Dal::D)},
               {Dal::B, Dal::D});
  const FtsResult r = ft_schedule(ts, killing_config());
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FtsFailure::kUnschedulable);
}

TEST(FtSchedule, SafetyGateFiresBeforeSchedulability) {
  // Same load with LO = C: the killing bound can never meet 1e-5, so the
  // failure is reported as adaptation-unsafe (Algorithm 1 line 5-7).
  FtTaskSet ts({make("h1", 10, 4, Dal::B), make("h2", 10, 4, Dal::B),
                make("l", 10, 4, Dal::C)},
               {Dal::B, Dal::C});
  const FtsResult r = ft_schedule(ts, killing_config());
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FtsFailure::kAdaptationUnsafe);
}

TEST(FtSchedule, ImpossibleSafetyFailsEarly) {
  FtTaskSet ts({make("h", 100, 10, Dal::A, 0.9), make("l", 100, 1, Dal::E)},
               {Dal::A, Dal::E});
  const FtsResult r = ft_schedule(ts, killing_config());
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.failure, FtsFailure::kHiSafetyInfeasible);
}

TEST(FtSchedule, CustomSchedulerViaInterface) {
  // FT-S is generic: plug AMC-rtb in as S (Appendix B remark). The
  // converted sets are implicit-deadline, hence constrained, so the RTA
  // applies.
  FtsConfig cfg = killing_config();
  cfg.test = std::make_shared<const mcs::AmcRtbTest>();
  cfg.use_closed_form_umc = false;
  const FtsResult r = ft_schedule(example31(), cfg);
  EXPECT_EQ(r.scheduler_name, "AMC-rtb");
  // AMC-rtb may or may not admit the same profile as EDF-VD; what must
  // hold is internal consistency on success.
  if (r.success) {
    EXPECT_TRUE(mcs::AmcRtbTest{}.schedulable(r.converted));
  }
}

TEST(FtSchedule, FailureToString) {
  EXPECT_EQ(to_string(FtsFailure::kNone), "none");
  EXPECT_EQ(to_string(FtsFailure::kHiSafetyInfeasible),
            "HI-safety-infeasible");
  EXPECT_EQ(to_string(FtsFailure::kLoSafetyInfeasible),
            "LO-safety-infeasible");
  EXPECT_EQ(to_string(FtsFailure::kAdaptationUnsafe), "adaptation-unsafe");
  EXPECT_EQ(to_string(FtsFailure::kUnschedulable), "unschedulable");
}

TEST(UmcClosedForm, MatchesConvertedSetAnalysis) {
  // The Algorithm 2 fast path must agree with analyzing Gamma directly.
  const FtTaskSet ts = example31();
  const double u_hi = ts.utilization(CritLevel::HI);
  const double u_lo = ts.utilization(CritLevel::LO);
  for (int n_adapt = 0; n_adapt <= 3; ++n_adapt) {
    const double closed = umc_closed_form(u_hi, u_lo, 3, 1, n_adapt,
                                          mcs::AdaptationKind::kKilling, 1.0);
    const auto direct =
        mcs::analyze_edf_vd(convert_to_mc(ts, 3, 1, n_adapt));
    EXPECT_NEAR(closed, direct.u_mc, 1e-12) << "n' = " << n_adapt;
  }
}

TEST(SweepAdaptation, ProducesMonotoneCurves) {
  // The Fig. 1 mechanics: U_MC non-decreasing, pfh(LO) non-increasing.
  const FtTaskSet ts = example31(Dal::C);
  AdaptationModel model;
  model.kind = mcs::AdaptationKind::kKilling;
  model.os_hours = 1.0;
  const auto pts = sweep_adaptation(ts, 3, 3, model,
                                    SafetyRequirements::do178b(), 4);
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].u_mc, pts[i - 1].u_mc);
    EXPECT_LE(pts[i].pfh_lo, pts[i - 1].pfh_lo);
    EXPECT_EQ(pts[i].n_adapt, static_cast<int>(i));
  }
  EXPECT_EQ(pts[0].schedulable, pts[0].u_mc <= 1.0);
}

}  // namespace
}  // namespace ftmc::core
