#include "ftmc/core/ft_task.hpp"

#include <gtest/gtest.h>

#include "ftmc/common/contracts.hpp"

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal,
            double f = 1e-5) {
  return {name, t, t, c, dal, f};
}

TEST(FtTask, UtilizationAndDeadlines) {
  FtTask t = make("x", 100.0, 20.0, Dal::B);
  EXPECT_DOUBLE_EQ(t.utilization(), 0.2);
  EXPECT_TRUE(t.implicit_deadline());
  t.deadline = 50.0;
  EXPECT_FALSE(t.implicit_deadline());
}

TEST(FtTask, ValidateRejectsMalformed) {
  EXPECT_THROW(make("x", 0.0, 5.0, Dal::B).validate(), ContractViolation);
  EXPECT_THROW(make("x", 10.0, 0.0, Dal::B).validate(), ContractViolation);
  EXPECT_THROW(make("x", 10.0, 5.0, Dal::B, -0.5).validate(),
               ContractViolation);
  EXPECT_THROW(make("x", 10.0, 5.0, Dal::B, 1.0).validate(),
               ContractViolation);
  EXPECT_NO_THROW(make("x", 10.0, 5.0, Dal::B, 0.0).validate());
}

TEST(FtTaskSet, CritOfFollowsMapping) {
  FtTaskSet ts({make("h", 100, 10, Dal::B), make("l", 50, 5, Dal::C)},
               {Dal::B, Dal::C});
  EXPECT_EQ(ts.crit_of(0), CritLevel::HI);
  EXPECT_EQ(ts.crit_of(1), CritLevel::LO);
}

TEST(FtTaskSet, CritOfRejectsForeignDal) {
  FtTaskSet ts({make("x", 100, 10, Dal::A)}, {Dal::B, Dal::C});
  EXPECT_THROW((void)ts.crit_of(0), ContractViolation);
  EXPECT_THROW(ts.validate(), ContractViolation);
}

TEST(FtTaskSet, MappingMustBeOrdered) {
  EXPECT_THROW(FtTaskSet({}, DualCriticalityMapping{Dal::C, Dal::B}),
               ContractViolation);
  FtTaskSet ts;
  EXPECT_THROW(ts.set_mapping({Dal::D, Dal::D}), ContractViolation);
  EXPECT_NO_THROW(ts.set_mapping({Dal::A, Dal::E}));
}

TEST(FtTaskSet, IndicesAndCounts) {
  FtTaskSet ts({make("h1", 100, 10, Dal::B), make("l1", 50, 5, Dal::C),
                make("h2", 200, 10, Dal::B)},
               {Dal::B, Dal::C});
  EXPECT_EQ(ts.count(CritLevel::HI), 2u);
  EXPECT_EQ(ts.count(CritLevel::LO), 1u);
  const auto hi = ts.indices_at(CritLevel::HI);
  ASSERT_EQ(hi.size(), 2u);
  EXPECT_EQ(hi[0], 0u);
  EXPECT_EQ(hi[1], 2u);
}

TEST(FtTaskSet, UtilizationPerLevel) {
  FtTaskSet ts({make("h", 100, 10, Dal::B), make("l", 50, 5, Dal::C)},
               {Dal::B, Dal::C});
  EXPECT_DOUBLE_EQ(ts.utilization(CritLevel::HI), 0.1);
  EXPECT_DOUBLE_EQ(ts.utilization(CritLevel::LO), 0.1);
  EXPECT_DOUBLE_EQ(ts.total_utilization(), 0.2);
}

TEST(FtTaskSet, AllImplicitDeadlines) {
  FtTaskSet ts({make("h", 100, 10, Dal::B)}, {Dal::B, Dal::C});
  EXPECT_TRUE(ts.all_implicit_deadlines());
  FtTask constrained = make("c", 100, 10, Dal::C);
  constrained.deadline = 60.0;
  ts.add(constrained);
  EXPECT_FALSE(ts.all_implicit_deadlines());
}

TEST(UniformProfile, AssignsByLevel) {
  FtTaskSet ts({make("h", 100, 10, Dal::B), make("l", 50, 5, Dal::C),
                make("h2", 80, 8, Dal::B)},
               {Dal::B, Dal::C});
  const PerTaskProfile p = uniform_profile(ts, 3, 2);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], 3);
  EXPECT_EQ(p[1], 2);
  EXPECT_EQ(p[2], 3);
}

TEST(UniformProfile, RejectsNegative) {
  FtTaskSet ts({make("h", 100, 10, Dal::B)}, {Dal::B, Dal::C});
  EXPECT_THROW(uniform_profile(ts, -1, 1), ContractViolation);
}

}  // namespace
}  // namespace ftmc::core
