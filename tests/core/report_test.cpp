#include "ftmc/core/report.hpp"

#include <gtest/gtest.h>

namespace ftmc::core {
namespace {

FtTask make(const std::string& name, Millis t, Millis c, Dal dal) {
  return {name, t, t, c, dal, 1e-5};
}

FtTaskSet example31(Dal lo = Dal::D) {
  return FtTaskSet({make("tau1", 60, 5, Dal::B), make("tau2", 25, 4, Dal::B),
                    make("tau3", 40, 7, lo), make("tau4", 90, 6, lo),
                    make("tau5", 70, 8, lo)},
                   {Dal::B, lo});
}

FtsConfig killing_config(double os = 1.0) {
  FtsConfig cfg;
  cfg.adaptation.kind = mcs::AdaptationKind::kKilling;
  cfg.adaptation.os_hours = os;
  return cfg;
}

TEST(Report, SuccessfulRunContainsVerdictAndProfiles) {
  const std::string report =
      certification_report(example31(), killing_config());
  EXPECT_NE(report.find("VERDICT: CERTIFIABLE"), std::string::npos);
  EXPECT_NE(report.find("n_HI = 3"), std::string::npos);
  EXPECT_NE(report.find("n'_HI = 2"), std::string::npos);
  EXPECT_NE(report.find("EDF-VD"), std::string::npos);
  EXPECT_NE(report.find("DO-178B"), std::string::npos);
  EXPECT_NE(report.find("pfh(HI) = 2.040e-10"), std::string::npos);
}

TEST(Report, ListsEveryTask) {
  const std::string report =
      certification_report(example31(), killing_config());
  for (const char* name : {"tau1", "tau2", "tau3", "tau4", "tau5"}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
}

TEST(Report, FailureNamesTheReason) {
  const std::string report =
      certification_report(example31(Dal::C), killing_config(10.0));
  EXPECT_NE(report.find("VERDICT: REJECTED"), std::string::npos);
  EXPECT_TRUE(report.find("adaptation-unsafe") != std::string::npos ||
              report.find("unschedulable") != std::string::npos);
}

TEST(Report, ConvertedSetSection) {
  const std::string report =
      certification_report(example31(), killing_config());
  EXPECT_NE(report.find("converted mixed-criticality task set"),
            std::string::npos);
  EXPECT_NE(report.find("C(HI)"), std::string::npos);
}

TEST(Report, SectionsCanBeDisabled) {
  ReportOptions opts;
  opts.include_adaptation_sweep = false;
  opts.include_converted_set = false;
  const std::string report =
      certification_report(example31(), killing_config(), opts);
  EXPECT_EQ(report.find("adaptation sweep"), std::string::npos);
  EXPECT_EQ(report.find("converted mixed-criticality"), std::string::npos);
  EXPECT_NE(report.find("VERDICT"), std::string::npos);
}

TEST(Report, SweepMarksSchedulabilityAndSafety) {
  const std::string report =
      certification_report(example31(), killing_config());
  EXPECT_NE(report.find("adaptation sweep"), std::string::npos);
  EXPECT_NE(report.find("(schedulable)"), std::string::npos);
}

TEST(Report, Deterministic) {
  const std::string a = certification_report(example31(), killing_config());
  const std::string b = certification_report(example31(), killing_config());
  EXPECT_EQ(a, b);
}

TEST(Report, DegradationMentionsFactor) {
  FtsConfig cfg;
  cfg.adaptation.kind = mcs::AdaptationKind::kDegradation;
  cfg.adaptation.degradation_factor = 6.0;
  cfg.adaptation.os_hours = 1.0;
  const std::string report = certification_report(example31(), cfg);
  EXPECT_NE(report.find("service degradation"), std::string::npos);
  EXPECT_NE(report.find("d_f = 6"), std::string::npos);
}

}  // namespace
}  // namespace ftmc::core
