// Acceptance test of the no-allocation contract (core.hpp): after
// `Core::start()` the runtime core performs no heap allocation, however
// busy the schedule — verified with a global operator-new hook.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdlib>
#include <new>

#include "ftmc/rt/core.hpp"

namespace rt = ftmc::rt;
using ftmc::CritLevel;
using rt::Tick;

namespace {

// Global allocation counter bumped by the replaced operator new below.
// Not atomic on purpose: this test is single-threaded, and the counter
// must not itself perturb codegen.
std::size_t g_allocations = 0;

}  // namespace

// GCC pairs the replaced operator new with the std::free in the replaced
// delete and warns about the mismatch; pairing them this way is exactly
// what a minimal counting allocator does.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

// A host that never allocates: fixed execution times, a deterministic
// fault pattern, events counted instead of stored.
class StaticHost final : public rt::Host {
 public:
  std::size_t events = 0;
  std::size_t fault_calls = 0;

  Tick sample_segment_time(std::uint32_t) override { return 100; }
  bool sample_fault(std::uint32_t, int faults_so_far) override {
    // Fault every 7th verdict on the first attempt: exercises the
    // re-execution path and (for HI tasks) the mode switch.
    ++fault_calls;
    return faults_so_far == 0 && fault_calls % 7 == 0;
  }
  void emit(const rt::Event&) override { ++events; }
};

rt::TaskParams task(Tick period, CritLevel crit) {
  rt::TaskParams p;
  p.period = period;
  p.deadline = period;
  p.wcet = 100;
  p.virtual_deadline = period / 2;
  p.crit = crit;
  p.max_attempts = 2;
  p.adapt_threshold = 1;
  return p;
}

// Drives a dense schedule entirely through the core's public interface:
// periodic releases, dispatch, faults, mode switches, kills / degraded
// deadlines, idle resets. Returns the number of jobs completed.
std::uint64_t drive(rt::Core& core, Tick horizon) {
  const std::size_t n = core.num_tasks();
  Tick next_release[8] = {};  // fixed-size: the driver must not allocate
  Tick now = 0;
  while (now < horizon) {
    for (std::uint32_t t = 0; t < n; ++t) {
      if (next_release[t] <= now && core.release_allowed(t)) {
        core.on_release(t, now);
      }
      if (next_release[t] <= now) {
        next_release[t] =
            now + static_cast<Tick>(core.current_period(t));
      }
    }
    if (!core.has_ready()) {
      core.on_idle(now);
      Tick next = horizon;
      for (std::uint32_t t = 0; t < n; ++t) {
        next = std::min(next, next_release[t]);
      }
      now = next > now ? next : now + 1;
      continue;
    }
    core.dispatch(now);
    Tick until = now + core.running_remaining();
    for (std::uint32_t t = 0; t < n; ++t) {
      if (next_release[t] > now) until = std::min(until, next_release[t]);
    }
    core.run_for(until - now);
    now = until;
    if (core.has_ready() && core.running_remaining() == 0) {
      core.on_segment_boundary(now);
    }
  }
  std::uint64_t completed = 0;
  for (std::uint32_t t = 0; t < n; ++t) {
    completed += core.task_counters(t).completed;
  }
  return completed;
}

class RtNoAlloc : public ::testing::TestWithParam<rt::Adaptation> {};

}  // namespace

TEST_P(RtNoAlloc, NoHeapAllocationAfterStart) {
  StaticHost host;
  rt::CoreConfig cfg;
  cfg.policy = rt::Policy::kEdfVd;
  cfg.adaptation = GetParam();
  cfg.degradation_factor =
      GetParam() == rt::Adaptation::kDegradation ? 4.0 : 1.0;
  cfg.mode_reset_on_idle = true;  // exercise both switch directions
  cfg.max_jobs = 16;
  cfg.allow_job_growth = false;   // the embedded-target contract
  // A ring far smaller than the event count: the flight recorder wraps
  // thousands of times during the run, and every record() lands inside
  // the no-alloc window below (the ring itself is allocated in the
  // constructor). Dumping is allowed to allocate; recording is not.
  cfg.black_box_capacity = 64;
  rt::Core core(cfg, host);
  core.add_task(task(1'000, CritLevel::HI));
  core.add_task(task(2'000, CritLevel::HI));
  core.add_task(task(1'500, CritLevel::LO));
  core.add_task(task(4'000, CritLevel::LO));

  const std::size_t before_start = g_allocations;
  core.start();
  // Positive control: start() is where the pre-allocation happens, so the
  // hook must have observed it (otherwise this whole test is vacuous).
  ASSERT_GT(g_allocations, before_start)
      << "operator-new hook is not active";

  const std::size_t baseline = g_allocations;
  const std::uint64_t completed = drive(core, /*horizon=*/1'000'000);
  const std::size_t during_run = g_allocations - baseline;

  EXPECT_EQ(during_run, 0u)
      << "the core allocated " << during_run
      << " time(s) after start(); the no-alloc contract is broken";
  // The schedule must actually have been busy for the claim to mean
  // anything: hundreds of completions, faults sampled, events emitted.
  EXPECT_GT(completed, 100u);
  EXPECT_GT(host.events, 1000u);
  EXPECT_GT(host.fault_calls, 100u);
  EXPECT_GT(core.counters().mode_switches, 0u);
  // Recording was live the whole time: one black-box record per emitted
  // event plus the four admission verdicts, with the ring full and the
  // overflow counted rather than allocated around.
  EXPECT_EQ(core.black_box().total(),
            host.events + core.black_box_admissions());
  EXPECT_EQ(core.black_box().size(), 64u);
  EXPECT_EQ(core.black_box().dropped(), core.black_box().total() - 64u);
}

INSTANTIATE_TEST_SUITE_P(AllAdaptations, RtNoAlloc,
                         ::testing::Values(rt::Adaptation::kNone,
                                           rt::Adaptation::kKilling,
                                           rt::Adaptation::kDegradation));
