// Tests of the always-on flight recorder (rt/flight_recorder.hpp), its
// dump format (rt/blackbox_io.hpp) and the dump-replay machinery
// (check/blackbox.hpp): ring mechanics across wraparound, the
// admission/scheduling alignment contract, the JSON round trip, and the
// registered blackbox_replay property on a concrete case.
#include "ftmc/rt/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ftmc/check/blackbox.hpp"
#include "ftmc/check/replay.hpp"
#include "ftmc/fms/fms.hpp"
#include "ftmc/rt/blackbox_io.hpp"
#include "ftmc/rt/posix_host.hpp"
#include "ftmc/sim/engine.hpp"
#include "ftmc/sim/model.hpp"

namespace rt = ftmc::rt;
namespace sim = ftmc::sim;
namespace check = ftmc::check;
namespace fms = ftmc::fms;

namespace {

std::vector<rt::PosixTask> fms_posix_tasks(double fault_prob) {
  std::vector<rt::PosixTask> tasks = check::posix_tasks_from_sim(
      sim::build_sim_tasks(fms::canonical_fms_instance(), /*n_hi=*/3,
                           /*n_lo=*/2, /*n_adapt=*/2,
                           /*virtual_deadline_factor=*/0.7));
  for (rt::PosixTask& t : tasks) t.failure_prob = fault_prob;
  return tasks;
}

rt::PosixHostConfig fms_config(std::size_t ring_capacity) {
  rt::PosixHostConfig cfg;
  cfg.core.policy = rt::Policy::kEdfVd;
  cfg.core.adaptation = rt::Adaptation::kDegradation;
  cfg.core.degradation_factor = fms::kFmsDegradationFactor;
  cfg.core.mode_reset_on_idle = true;
  cfg.core.black_box_capacity = ring_capacity;
  cfg.horizon = 2'000'000;  // 2 simulated seconds
  cfg.time_scale = 0.0;     // free-run
  cfg.seed = 42;
  cfg.fault_model = rt::PosixFaultModel::kBernoulli;
  cfg.trace_capacity = 200'000;
  return cfg;
}

rt::BlackBoxRecord make_record(std::uint64_t job) {
  rt::BlackBoxRecord r;
  r.kind = rt::RecordKind::kStart;
  r.job = job;
  return r;
}

}  // namespace

TEST(RtBlackBox, RingKeepsTheNewestRecordsAcrossWraparound) {
  rt::FlightRecorder ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 0u);

  for (std::uint64_t i = 0; i < 10; ++i) {
    const rt::BlackBoxRecord r = make_record(i);
    ring.record(r.time, r.kind, r.task, r.job, r.detail, r.release,
                r.abs_deadline);
  }
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  // Oldest-first iteration over the surviving tail: jobs 6..9 with
  // their global sequence numbers intact.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i).seq, 6u + i);
    EXPECT_EQ(ring.at(i).job, 6u + i);
  }

  std::vector<rt::BlackBoxRecord> copied;
  ring.copy_to(copied);
  ASSERT_EQ(copied.size(), 4u);
  EXPECT_EQ(copied.front().seq, 6u);
  EXPECT_EQ(copied.back().seq, 9u);
}

TEST(RtBlackBox, ZeroCapacityStillCountsRecords) {
  rt::FlightRecorder ring(0);
  const rt::BlackBoxRecord r = make_record(0);
  ring.record(r.time, r.kind, r.task, r.job, r.detail, r.release,
              r.abs_deadline);
  EXPECT_EQ(ring.total(), 1u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 1u);
}

TEST(RtBlackBox, RecordKindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(rt::RecordKind::kReject); ++k) {
    const rt::RecordKind kind = static_cast<rt::RecordKind>(k);
    rt::RecordKind back;
    ASSERT_TRUE(rt::record_kind_from_string(rt::to_string(kind), back))
        << rt::to_string(kind);
    EXPECT_EQ(back, kind);
  }
  rt::RecordKind unused;
  EXPECT_FALSE(rt::record_kind_from_string("not-a-kind", unused));
}

TEST(RtBlackBox, SimulatorRecorderAlignsWithItsOwnTrace) {
  const std::vector<sim::SimTask> tasks = sim::build_sim_tasks(
      fms::canonical_fms_instance(), 3, 2, 2, 0.7);
  sim::SimConfig cfg;
  cfg.horizon = 1'000'000;
  cfg.seed = 7;
  cfg.trace_capacity = 200'000;  // 0 would disable the trace entirely
  sim::Simulator simulator(tasks, cfg);
  (void)simulator.run();

  const rt::FlightRecorder& bb = simulator.black_box();
  const std::vector<sim::TraceEvent>& trace = simulator.trace();
  const std::uint64_t admissions = bb.total() - trace.size();
  ASSERT_EQ(admissions, tasks.size());
  for (std::size_t i = 0; i < bb.size(); ++i) {
    const rt::BlackBoxRecord& r = bb.at(i);
    if (r.seq < admissions) {
      EXPECT_EQ(r.kind, rt::RecordKind::kAdmit);
      continue;
    }
    const sim::TraceEvent& e = trace[static_cast<std::size_t>(
        r.seq - admissions)];
    EXPECT_EQ(r.time, e.time);
    EXPECT_EQ(static_cast<int>(r.kind), static_cast<int>(e.kind));
    EXPECT_EQ(r.task, e.task);
    EXPECT_EQ(r.job, e.job);
    EXPECT_EQ(r.detail, e.detail);
  }
}

TEST(RtBlackBox, WrappedPosixDumpParsesBackAndReplays) {
  // Ring far smaller than the event count: only the newest tail
  // survives, which is exactly what a post-mortem has to align.
  const std::vector<rt::PosixTask> tasks = fms_posix_tasks(0.05);
  const rt::PosixHostConfig cfg = fms_config(/*ring_capacity=*/64);
  rt::PosixHost host(tasks, cfg);
  const rt::PosixResult result = host.run();
  ASSERT_GT(result.blackbox_total, 64u) << "run too small to wrap the ring";
  ASSERT_EQ(result.blackbox.size(), 64u);
  EXPECT_EQ(result.blackbox_admissions, tasks.size());

  std::ostringstream os;
  rt::write_blackbox_json(os, tasks, cfg, result);
  const check::BlackBoxDump dump = check::parse_blackbox_json(os.str());
  EXPECT_EQ(dump.total_records, result.blackbox_total);
  EXPECT_EQ(dump.admission_records, result.blackbox_admissions);
  EXPECT_EQ(dump.records.size(), result.blackbox.size());
  EXPECT_EQ(dump.dropped_records, result.blackbox_total - 64u);
  EXPECT_EQ(dump.tasks.size(), tasks.size());
  EXPECT_EQ(dump.config.seed, cfg.seed);
  EXPECT_EQ(dump.config.horizon, cfg.horizon);

  const check::ReplayDiff diff = check::replay_blackbox_through_sim(dump);
  EXPECT_TRUE(diff.identical) << diff.message;
}

TEST(RtBlackBox, ReplayDetectsAMutatedRecord) {
  const std::vector<rt::PosixTask> tasks = fms_posix_tasks(0.05);
  const rt::PosixHostConfig cfg = fms_config(/*ring_capacity=*/4096);
  rt::PosixHost host(tasks, cfg);
  const rt::PosixResult result = host.run();

  std::ostringstream os;
  rt::write_blackbox_json(os, tasks, cfg, result);
  check::BlackBoxDump dump = check::parse_blackbox_json(os.str());
  ASSERT_GT(dump.records.size(), 20u);
  dump.records[dump.records.size() / 2].time += 1;

  const check::ReplayDiff diff = check::replay_blackbox_through_sim(dump);
  EXPECT_FALSE(diff.identical);
  EXPECT_NE(diff.message.find("diverges"), std::string::npos)
      << diff.message;
}

TEST(RtBlackBox, TruncatedRunReplaysAsAPrefix) {
  // A SIGINT-style stop produces a prefix of the full schedule; the dump
  // of the truncated run must still replay clean against the simulator
  // (which runs the configured horizon, i.e. a superset of the events).
  const std::vector<rt::PosixTask> tasks = fms_posix_tasks(0.05);
  const rt::PosixHostConfig cfg = fms_config(/*ring_capacity=*/1 << 16);
  rt::PosixHost host(tasks, cfg);
  host.request_stop();  // stop before the first scheduling quantum
  const rt::PosixResult result = host.run();
  EXPECT_LT(result.trace.size(), 50u);

  std::ostringstream os;
  rt::write_blackbox_json(os, tasks, cfg, result);
  const check::BlackBoxDump dump = check::parse_blackbox_json(os.str());
  EXPECT_EQ(dump.admission_records, tasks.size());
  const check::ReplayDiff diff = check::replay_blackbox_through_sim(dump);
  EXPECT_TRUE(diff.identical) << diff.message;
}

TEST(RtBlackBox, ParserRejectsCorruptedDumps) {
  const std::vector<rt::PosixTask> tasks = fms_posix_tasks(0.02);
  const rt::PosixHostConfig cfg = fms_config(/*ring_capacity=*/256);
  rt::PosixHost host(tasks, cfg);
  const rt::PosixResult result = host.run();
  std::ostringstream os;
  rt::write_blackbox_json(os, tasks, cfg, result);
  const std::string good = os.str();

  // Unknown format marker.
  {
    std::string bad = good;
    bad.replace(bad.find("ftmc-blackbox-v1"), 16, "ftmc-blackbox-v9");
    EXPECT_THROW((void)check::parse_blackbox_json(bad), std::exception);
  }
  // Accounting that does not add up.
  {
    check::BlackBoxDump dump = check::parse_blackbox_json(good);
    std::string bad = good;
    const std::string needle =
        "\"total_records\": " + std::to_string(dump.total_records);
    ASSERT_NE(bad.find(needle), std::string::npos);
    bad.replace(bad.find(needle), needle.size(),
                "\"total_records\": " +
                    std::to_string(dump.total_records + 1));
    EXPECT_THROW((void)check::parse_blackbox_json(bad), std::exception);
  }
  // Malformed JSON.
  EXPECT_THROW((void)check::parse_blackbox_json("{\"format\":"),
               std::exception);
}

TEST(RtBlackBox, CsvDumpHasOneLinePerRecord) {
  const std::vector<rt::PosixTask> tasks = fms_posix_tasks(0.02);
  const rt::PosixHostConfig cfg = fms_config(/*ring_capacity=*/128);
  rt::PosixHost host(tasks, cfg);
  const rt::PosixResult result = host.run();

  std::ostringstream os;
  rt::write_blackbox_csv(os, result.blackbox);
  std::istringstream lines(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "seq,time,kind,task,job,detail,release,deadline");
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  EXPECT_EQ(rows, result.blackbox.size());
}

TEST(RtBlackBox, RegisteredPropertyPassesOnTheFmsCase) {
  check::Case c;
  c.ts = fms::canonical_fms_instance();
  c.n_hi = 3;
  c.n_lo = 2;
  c.n_adapt = 2;
  c.degradation_factor = fms::kFmsDegradationFactor;
  c.seed = 123;
  const check::PropertyContext ctx;

  const check::Outcome outcome = check::p_blackbox_replay(c, ctx);
  EXPECT_EQ(outcome.verdict, check::Verdict::kPass) << outcome.message;
}
