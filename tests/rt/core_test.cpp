// Unit tests of the freestanding runtime core: the host drives it
// manually, scripting execution times and fault verdicts.
#include "ftmc/rt/core.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "ftmc/common/contracts.hpp"

namespace rt = ftmc::rt;
using ftmc::CritLevel;
using ftmc::ContractViolation;
using rt::Tick;

namespace {

// A host whose answers are scripted by the test.
class ScriptedHost final : public rt::Host {
 public:
  std::vector<Tick> exec_time;          // per task: duration of any segment
  std::deque<bool> fault_script;        // global FIFO; empty => no fault
  std::vector<rt::Event> events;
  std::vector<CritLevel> mode_changes;

  Tick sample_segment_time(std::uint32_t task) override {
    return exec_time[task];
  }
  bool sample_fault(std::uint32_t, int) override {
    if (fault_script.empty()) return false;
    const bool f = fault_script.front();
    fault_script.pop_front();
    return f;
  }
  void emit(const rt::Event& event) override { events.push_back(event); }
  void on_mode_change(CritLevel mode, Tick) override {
    mode_changes.push_back(mode);
  }

  [[nodiscard]] std::vector<rt::EventKind> kinds() const {
    std::vector<rt::EventKind> out;
    out.reserve(events.size());
    for (const rt::Event& e : events) out.push_back(e.kind);
    return out;
  }
};

rt::TaskParams task(Tick period, Tick deadline, Tick wcet, Tick vd,
                    CritLevel crit, int max_attempts = 1,
                    int adapt_threshold = 1) {
  rt::TaskParams p;
  p.period = period;
  p.deadline = deadline;
  p.wcet = wcet;
  p.virtual_deadline = vd;
  p.crit = crit;
  p.max_attempts = max_attempts;
  p.adapt_threshold = adapt_threshold;
  return p;
}

}  // namespace

TEST(RtCore, EdfPicksEarliestAbsoluteDeadline) {
  ScriptedHost host;
  rt::CoreConfig cfg;
  cfg.policy = rt::Policy::kEdf;
  rt::Core core(cfg, host);
  core.add_task(task(100, 80, 10, 80, CritLevel::LO));
  core.add_task(task(100, 40, 10, 40, CritLevel::LO));
  core.start();
  host.exec_time = {10, 10};

  core.on_release(0, 0);  // deadline 80
  core.on_release(1, 0);  // deadline 40
  const std::size_t pick = core.dispatch(0);
  EXPECT_EQ(core.task(static_cast<std::uint32_t>(1)).deadline, 40);
  // The picked slot belongs to task 1 (earlier deadline): its kStart
  // event says so.
  ASSERT_EQ(host.events.back().kind, rt::EventKind::kStart);
  EXPECT_EQ(host.events.back().task, 1u);
  (void)pick;
}

TEST(RtCore, EdfVdUsesVirtualDeadlineInLoModeOnly) {
  ScriptedHost host;
  rt::CoreConfig cfg;
  cfg.policy = rt::Policy::kEdfVd;
  cfg.adaptation = rt::Adaptation::kNone;
  rt::Core core(cfg, host);
  // HI task: D=100, VD=30. LO task: D=50.
  core.add_task(task(200, 100, 10, 30, CritLevel::HI, 2, 1));
  core.add_task(task(200, 50, 10, 50, CritLevel::LO));
  core.start();
  host.exec_time = {10, 10};

  core.on_release(0, 0);
  core.on_release(1, 0);
  // LO mode: HI keyed at 30 < LO at 50 -> HI starts.
  core.dispatch(0);
  ASSERT_EQ(host.events.back().kind, rt::EventKind::kStart);
  EXPECT_EQ(host.events.back().task, 0u);

  // Fault the HI job -> mode switch; in HI mode its key is the true
  // deadline 100 > LO 50, so the LO job now wins.
  host.fault_script = {true};
  core.run_for(10);
  core.on_segment_boundary(10);
  EXPECT_EQ(core.mode(), CritLevel::HI);
  core.dispatch(10);
  ASSERT_EQ(host.events.back().kind, rt::EventKind::kStart);
  EXPECT_EQ(host.events.back().task, 1u);
}

TEST(RtCore, ReExecutionUntilBudgetExhausted) {
  ScriptedHost host;
  rt::CoreConfig cfg;
  cfg.adaptation = rt::Adaptation::kNone;
  rt::Core core(cfg, host);
  core.add_task(task(1000, 1000, 10, 1000, CritLevel::HI, 3, 99));
  core.start();
  host.exec_time = {10};
  host.fault_script = {true, true, true};  // all three attempts fault

  core.on_release(0, 0);
  for (Tick t = 0; t < 3; ++t) {
    core.dispatch(t * 10);
    core.run_for(10);
    core.on_segment_boundary((t + 1) * 10);
  }
  const std::vector<rt::EventKind> kinds = host.kinds();
  // release, start, fail x3, job-fail — re-dispatches of the faulted job
  // are idempotent (it keeps the processor), so no extra kStart events.
  ASSERT_EQ(kinds.size(), 6u);
  EXPECT_EQ(kinds[5], rt::EventKind::kJobFail);
  EXPECT_EQ(core.task_counters(0).job_failures, 1u);
  EXPECT_EQ(core.task_counters(0).faults, 3u);
  EXPECT_EQ(core.task_counters(0).attempts, 3u);
  EXPECT_EQ(core.task_counters(0).completed, 0u);
  EXPECT_FALSE(core.has_ready());
}

TEST(RtCore, ThresholdZeroSwitchesAtRelease) {
  ScriptedHost host;
  rt::CoreConfig cfg;
  cfg.adaptation = rt::Adaptation::kKilling;
  rt::Core core(cfg, host);
  core.add_task(task(1000, 1000, 10, 500, CritLevel::HI, 2, 0));
  core.add_task(task(1000, 1000, 10, 1000, CritLevel::LO));
  core.start();
  host.exec_time = {10, 10};

  core.on_release(1, 0);  // LO job first
  EXPECT_EQ(core.mode(), CritLevel::LO);
  core.on_release(0, 5);  // threshold 0: switch fires at the release
  EXPECT_EQ(core.mode(), CritLevel::HI);
  EXPECT_EQ(core.counters().first_mode_switch, 5);
  // The ready LO job was killed by the switch.
  EXPECT_EQ(core.task_counters(1).killed, 1u);
  EXPECT_FALSE(core.release_allowed(1));
  EXPECT_TRUE(core.release_allowed(0));
  ASSERT_EQ(host.mode_changes.size(), 1u);
  EXPECT_EQ(host.mode_changes[0], CritLevel::HI);
}

TEST(RtCore, DegradationStretchesDeadlinesAndPeriods) {
  ScriptedHost host;
  rt::CoreConfig cfg;
  cfg.adaptation = rt::Adaptation::kDegradation;
  cfg.degradation_factor = 3.0;
  rt::Core core(cfg, host);
  core.add_task(task(1000, 1000, 10, 400, CritLevel::HI, 2, 1));
  core.add_task(task(600, 600, 10, 600, CritLevel::LO));
  core.start();
  host.exec_time = {10, 10};

  core.on_release(1, 0);
  EXPECT_DOUBLE_EQ(core.current_period(1), 600.0);
  core.on_release(0, 0);
  core.dispatch(0);  // HI first (vd 400 < 600)
  host.fault_script = {true};
  core.run_for(10);
  core.on_segment_boundary(10);  // fault -> switch
  EXPECT_EQ(core.mode(), CritLevel::HI);
  // Ready LO job re-anchored to release + d_f * D.
  bool saw_kill = false;
  for (const rt::Event& e : host.events) {
    saw_kill |= e.kind == rt::EventKind::kKill;
  }
  EXPECT_FALSE(saw_kill);  // degradation never kills
  EXPECT_TRUE(core.release_allowed(1));
  EXPECT_DOUBLE_EQ(core.current_period(1), 1800.0);
  // A LO job released in HI mode gets the stretched relative deadline.
  core.on_release(1, 700);
  EXPECT_EQ(host.events.back().kind, rt::EventKind::kRelease);
  EXPECT_EQ(host.events.back().abs_deadline, 700 + 1800);
}

TEST(RtCore, ModeResetOnIdleReturnsToLo) {
  ScriptedHost host;
  rt::CoreConfig cfg;
  cfg.adaptation = rt::Adaptation::kKilling;
  cfg.mode_reset_on_idle = true;
  rt::Core core(cfg, host);
  core.add_task(task(1000, 1000, 10, 500, CritLevel::HI, 2, 1));
  core.start();
  host.exec_time = {10};

  core.on_release(0, 0);
  core.dispatch(0);
  host.fault_script = {true};
  core.run_for(10);
  core.on_segment_boundary(10);  // fault -> HI mode; re-execution pending
  EXPECT_EQ(core.mode(), CritLevel::HI);
  core.dispatch(10);
  core.run_for(10);
  core.on_segment_boundary(20);  // success -> retire
  EXPECT_FALSE(core.has_ready());
  core.on_idle(20);
  EXPECT_EQ(core.mode(), CritLevel::LO);
  EXPECT_EQ(core.counters().mode_resets, 1u);
  ASSERT_EQ(host.mode_changes.size(), 2u);
  EXPECT_EQ(host.mode_changes[1], CritLevel::LO);
}

TEST(RtCore, CompletionCountersAndResponseTimes) {
  ScriptedHost host;
  rt::Core core(rt::CoreConfig{}, host);
  core.add_task(task(1000, 1000, 40, 1000, CritLevel::LO));
  core.start();
  host.exec_time = {40};

  core.on_release(0, 0);
  core.dispatch(0);
  core.run_for(40);
  core.on_segment_boundary(40);
  core.on_release(0, 1000);
  core.dispatch(1000);
  core.run_for(40);
  core.on_segment_boundary(1060);  // simulated preemption gap
  const rt::TaskCounters& tc = core.task_counters(0);
  EXPECT_EQ(tc.released, 2u);
  EXPECT_EQ(tc.completed, 2u);
  EXPECT_EQ(tc.max_response, 60);
  EXPECT_EQ(tc.total_response, 100);
  EXPECT_EQ(tc.deadline_misses, 0u);
}

TEST(RtCore, LateCompletionCountsDeadlineMiss) {
  ScriptedHost host;
  rt::Core core(rt::CoreConfig{}, host);
  core.add_task(task(1000, 50, 10, 50, CritLevel::LO));
  core.start();
  host.exec_time = {10};

  core.on_release(0, 0);
  core.dispatch(0);
  core.run_for(10);
  core.on_segment_boundary(60);  // past the absolute deadline 50
  EXPECT_EQ(core.task_counters(0).deadline_misses, 1u);
  const std::vector<rt::EventKind> kinds = host.kinds();
  // ... miss is emitted before the completion, as in the simulator.
  ASSERT_GE(kinds.size(), 2u);
  EXPECT_EQ(kinds[kinds.size() - 2], rt::EventKind::kDeadlineMiss);
  EXPECT_EQ(kinds.back(), rt::EventKind::kComplete);
}

TEST(RtCore, StructuralContractsThrow) {
  ScriptedHost host;
  rt::Core core(rt::CoreConfig{}, host);
  EXPECT_THROW(core.add_task(task(0, 100, 10, 100, CritLevel::LO)),
               ContractViolation);
  EXPECT_THROW(core.add_task(task(100, 100, 10, 0, CritLevel::LO)),
               ContractViolation);
  EXPECT_THROW(core.add_task(task(100, 100, 10, 200, CritLevel::LO)),
               ContractViolation);
  rt::TaskParams bad = task(100, 100, 10, 100, CritLevel::LO);
  bad.max_attempts = 0;
  EXPECT_THROW(core.add_task(bad), ContractViolation);
  EXPECT_THROW(core.start(), ContractViolation);  // no tasks
  core.add_task(task(100, 100, 10, 100, CritLevel::LO));
  core.start();
  EXPECT_THROW(core.add_task(task(100, 100, 10, 100, CritLevel::LO)),
               ContractViolation);  // after start
  EXPECT_THROW(core.start(), ContractViolation);  // twice
}

TEST(RtCore, AdmissionControlRejectsOverDensity) {
  ScriptedHost host;
  rt::CoreConfig cfg;
  cfg.admission_control = true;
  rt::Core core(cfg, host);
  // 60% density task admitted; a second one would exceed 1.
  EXPECT_TRUE(core.add_task(task(100, 100, 60, 100, CritLevel::LO)).admitted);
  const rt::Admission second =
      core.add_task(task(100, 100, 60, 100, CritLevel::LO));
  EXPECT_FALSE(second.admitted);
  EXPECT_NE(second.reason, nullptr);
  EXPECT_EQ(core.num_tasks(), 1u);
  // The re-execution budget counts: n * C = 3 * 20 = 60 against D = 100
  // together with the existing 60% exceeds 1 as well.
  EXPECT_FALSE(
      core.add_task(task(100, 100, 20, 100, CritLevel::LO, 3)).admitted);
  // ... while a single-attempt 20% task fits.
  EXPECT_TRUE(core.add_task(task(100, 100, 20, 100, CritLevel::LO)).admitted);
}

TEST(RtCore, AdmissionControlUsesVirtualDeadlineInLoView) {
  ScriptedHost host;
  rt::CoreConfig cfg;
  cfg.admission_control = true;
  cfg.policy = rt::Policy::kEdfVd;
  rt::Core core(cfg, host);
  // HI task with C=60, D=100, VD=50: LO-mode density 60/50 = 1.2 > 1.
  EXPECT_FALSE(
      core.add_task(task(100, 100, 60, 50, CritLevel::HI, 1, 1)).admitted);
  // Same task with VD=100 has density 0.6 and is admitted.
  EXPECT_TRUE(
      core.add_task(task(100, 100, 60, 100, CritLevel::HI, 1, 1)).admitted);
}

TEST(RtCore, JobPoolExhaustionThrowsWithoutGrowth) {
  ScriptedHost host;
  rt::CoreConfig cfg;
  cfg.max_jobs = 2;
  cfg.allow_job_growth = false;
  rt::Core core(cfg, host);
  core.add_task(task(100, 100, 10, 100, CritLevel::LO));
  core.start();
  host.exec_time = {10};
  core.on_release(0, 0);
  core.on_release(0, 100);
  EXPECT_THROW(core.on_release(0, 200), ContractViolation);
}

TEST(RtCore, PreemptionEmitsPreemptAndCountsIt) {
  ScriptedHost host;
  rt::Core core(rt::CoreConfig{}, host);
  core.add_task(task(1000, 900, 100, 900, CritLevel::LO));
  core.add_task(task(1000, 200, 10, 200, CritLevel::LO));
  core.start();
  host.exec_time = {100, 10};

  core.on_release(0, 0);
  core.dispatch(0);
  core.run_for(50);
  core.on_release(1, 50);  // earlier deadline arrives mid-execution
  core.dispatch(50);
  EXPECT_EQ(core.counters().preemptions, 1u);
  const std::vector<rt::EventKind> kinds = host.kinds();
  ASSERT_GE(kinds.size(), 2u);
  EXPECT_EQ(kinds[kinds.size() - 2], rt::EventKind::kPreempt);
  EXPECT_EQ(kinds.back(), rt::EventKind::kStart);
}
