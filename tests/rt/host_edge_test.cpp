// Mode-switch edge cases, asserted identically against BOTH hosts of the
// ftmc::rt core (the POSIX host and the discrete-event simulator):
//   1. a LO job mid-execution at the switch instant (killed in flight);
//   2. a fault landing exactly at a virtual-deadline instant;
//   3. back-to-back faults exhausting the re-execution budget.
// Each scenario runs on the POSIX host (free-run), is structurally
// checked, then the identical structural predicate is applied to the
// simulator's trace of the same configuration, and finally the two traces
// are required to be bit-identical (the trace-replay property).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ftmc/check/replay.hpp"
#include "ftmc/rt/posix_host.hpp"
#include "ftmc/sim/engine.hpp"

namespace rt = ftmc::rt;
namespace sim = ftmc::sim;
namespace check = ftmc::check;
using ftmc::CritLevel;
using rt::Tick;

namespace {

// Host-neutral view of one trace event.
struct Ev {
  Tick time;
  int kind;
  std::uint32_t task;
  std::uint64_t job;
};

std::vector<Ev> normalize(const std::vector<rt::Event>& trace) {
  std::vector<Ev> out;
  out.reserve(trace.size());
  for (const rt::Event& e : trace) {
    out.push_back({e.time, static_cast<int>(e.kind), e.task, e.job});
  }
  return out;
}

std::vector<Ev> normalize(const std::vector<sim::TraceEvent>& trace) {
  std::vector<Ev> out;
  out.reserve(trace.size());
  for (const sim::TraceEvent& e : trace) {
    out.push_back({e.time, static_cast<int>(e.kind), e.task, e.job});
  }
  return out;
}

constexpr int kStart = static_cast<int>(rt::EventKind::kStart);
constexpr int kAttemptFail = static_cast<int>(rt::EventKind::kAttemptFail);
constexpr int kJobFail = static_cast<int>(rt::EventKind::kJobFail);
constexpr int kComplete = static_cast<int>(rt::EventKind::kComplete);
constexpr int kModeSwitch = static_cast<int>(rt::EventKind::kModeSwitch);
constexpr int kKill = static_cast<int>(rt::EventKind::kKill);

rt::PosixTask make_task(std::string name, Tick period, Tick deadline,
                        Tick wcet, Tick vd, CritLevel crit, int max_attempts,
                        int adapt_threshold) {
  rt::PosixTask t;
  t.name = std::move(name);
  t.params.period = period;
  t.params.deadline = deadline;
  t.params.wcet = wcet;
  t.params.virtual_deadline = vd;
  t.params.crit = crit;
  t.params.max_attempts = max_attempts;
  t.params.adapt_threshold = adapt_threshold;
  return t;
}

// The simulator run equivalent to a PosixHost configuration (the same
// mapping replay_through_sim applies).
std::vector<Ev> sim_trace_of(const std::vector<rt::PosixTask>& tasks,
                             const rt::PosixHostConfig& cfg) {
  std::vector<sim::SimTask> sim_tasks;
  for (const rt::PosixTask& p : tasks) {
    sim::SimTask t;
    t.name = p.name;
    t.period = p.params.period;
    t.deadline = p.params.deadline;
    t.wcet = p.params.wcet;
    t.crit = p.params.crit;
    t.max_attempts = p.params.max_attempts;
    t.adapt_threshold = p.params.adapt_threshold;
    t.failure_prob = cfg.fault_model == rt::PosixFaultModel::kNone
                         ? 0.0
                         : p.failure_prob;
    t.virtual_deadline = p.params.virtual_deadline;
    t.segments = p.params.segments;
    t.checkpoint_overhead = p.checkpoint_overhead;
    sim_tasks.push_back(std::move(t));
  }
  sim::SimConfig sc;
  sc.policy = sim::PolicyKind::kEdfVd;
  sc.adaptation = cfg.core.adaptation == rt::Adaptation::kKilling
                      ? ftmc::mcs::AdaptationKind::kKilling
                  : cfg.core.adaptation == rt::Adaptation::kDegradation
                      ? ftmc::mcs::AdaptationKind::kDegradation
                      : ftmc::mcs::AdaptationKind::kNone;
  sc.degradation_factor = cfg.core.degradation_factor;
  sc.horizon = cfg.horizon;
  sc.seed = cfg.seed;
  sc.exec_model = sim::ExecTimeModel::kAlwaysWcet;
  sc.fault_adversary = cfg.fault_model == rt::PosixFaultModel::kExhaustBudget
                           ? sim::FaultAdversary::kExhaustBudget
                           : sim::FaultAdversary::kBernoulli;
  sc.mode_reset_on_idle = cfg.core.mode_reset_on_idle;
  sc.trace_capacity = cfg.trace_capacity;
  sim::Simulator simulator(std::move(sim_tasks), sc);
  (void)simulator.run();
  return normalize(simulator.trace());
}

// Runs the POSIX host free-run and returns both normalized traces after
// requiring them to be bit-identical.
struct BothTraces {
  std::vector<Ev> posix;
  std::vector<Ev> des;
};

BothTraces run_both(const std::vector<rt::PosixTask>& tasks,
                    rt::PosixHostConfig cfg) {
  cfg.time_scale = 0.0;  // free-run: edge semantics, not pacing
  rt::PosixHost host(tasks, cfg);
  const rt::PosixResult result = host.run();
  const check::ReplayDiff diff =
      check::replay_through_sim(tasks, cfg, result.trace);
  EXPECT_TRUE(diff.identical) << diff.message;
  BothTraces both;
  both.posix = normalize(result.trace);
  both.des = sim_trace_of(tasks, cfg);
  EXPECT_EQ(both.posix.size(), both.des.size());
  return both;
}

bool has_event_before(const std::vector<Ev>& trace, std::size_t end, int kind,
                      std::uint32_t task, std::uint64_t job) {
  for (std::size_t i = 0; i < end; ++i) {
    const Ev& e = trace[i];
    if (e.kind == kind && e.task == task && e.job == job) return true;
  }
  return false;
}

}  // namespace

// 1. A LO job that is mid-execution when the criticality switch fires is
//    killed in flight: its kKill has a prior kStart but no completion.
//    (The same scenario also produces the not-yet-started flavor: the LO
//    job killed by the first switch before ever running.)
TEST(RtHostEdge, LoJobKilledMidExecutionAtSwitchInstant) {
  std::vector<rt::PosixTask> tasks = {
      make_task("hi", 20'000, 20'000, 2'000, 6'000, CritLevel::HI,
                /*max_attempts=*/2, /*adapt_threshold=*/1),
      make_task("lo", 24'000, 24'000, 18'000, 24'000, CritLevel::LO,
                /*max_attempts=*/1, /*adapt_threshold=*/1),
  };
  rt::PosixHostConfig cfg;
  cfg.core.adaptation = rt::Adaptation::kKilling;
  cfg.core.mode_reset_on_idle = true;  // re-admit LO between switches
  cfg.horizon = 60'000;
  cfg.fault_model = rt::PosixFaultModel::kExhaustBudget;
  const BothTraces both = run_both(tasks, cfg);

  const auto check_trace = [](const std::vector<Ev>& trace,
                              const char* which) {
    bool killed_mid_execution = false;
    bool killed_before_start = false;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const Ev& e = trace[i];
      if (e.kind != kKill) continue;
      ASSERT_EQ(e.task, 1u) << which << ": only LO jobs may be killed";
      // Every kill coincides with a mode switch.
      bool at_switch = false;
      for (const Ev& s : trace) {
        at_switch |= s.kind == kModeSwitch && s.time == e.time;
      }
      EXPECT_TRUE(at_switch) << which << ": kill without a switch at t="
                             << e.time;
      const bool started = has_event_before(trace, i, kStart, e.task, e.job);
      const bool finished =
          has_event_before(trace, i, kComplete, e.task, e.job) ||
          has_event_before(trace, i, kJobFail, e.task, e.job);
      EXPECT_FALSE(finished) << which << ": killed a finished job";
      killed_mid_execution |= started;
      killed_before_start |= !started;
    }
    EXPECT_TRUE(killed_mid_execution)
        << which << ": no LO job was killed mid-execution";
    EXPECT_TRUE(killed_before_start)
        << which << ": no LO job was killed before starting";
  };
  check_trace(both.posix, "posix");
  check_trace(both.des, "sim");
}

// 2. A fault landing exactly at the faulting job's virtual-deadline
//    instant: the switch fires at t = release + VD on the nose, and the
//    attempt-fail shares that timestamp.
TEST(RtHostEdge, FaultExactlyAtVirtualDeadline) {
  // WCET == VD, adversarial fault on the first attempt: the segment ends
  // (and faults) precisely when the job's virtual deadline expires.
  std::vector<rt::PosixTask> tasks = {
      make_task("hi", 10'000, 10'000, 2'000, 2'000, CritLevel::HI,
                /*max_attempts=*/2, /*adapt_threshold=*/1),
      make_task("lo", 10'000, 10'000, 1'000, 10'000, CritLevel::LO,
                /*max_attempts=*/1, /*adapt_threshold=*/1),
  };
  rt::PosixHostConfig cfg;
  cfg.core.adaptation = rt::Adaptation::kKilling;
  cfg.horizon = 30'000;
  cfg.fault_model = rt::PosixFaultModel::kExhaustBudget;
  const BothTraces both = run_both(tasks, cfg);

  const Tick vd = tasks[0].params.virtual_deadline;
  const auto check_trace = [vd](const std::vector<Ev>& trace,
                                const char* which) {
    // Find the first attempt-fail of the HI task; it must land exactly at
    // release + VD, with the mode switch at the same instant.
    bool found = false;
    for (std::size_t i = 0; i < trace.size() && !found; ++i) {
      const Ev& e = trace[i];
      if (e.kind != kAttemptFail || e.task != 0) continue;
      found = true;
      EXPECT_EQ(e.time, vd) << which
                            << ": first HI fault not at the VD instant";
      ASSERT_LT(i + 1, trace.size()) << which;
      EXPECT_EQ(trace[i + 1].kind, kModeSwitch) << which;
      EXPECT_EQ(trace[i + 1].time, e.time) << which;
    }
    EXPECT_TRUE(found) << which << ": adversary never faulted the HI task";
  };
  check_trace(both.posix, "posix");
  check_trace(both.des, "sim");
}

// 3. Back-to-back faults exhausting the re-execution budget: a job whose
//    every attempt faults emits exactly max_attempts kAttemptFail events
//    spaced one segment WCET apart, then kJobFail — and never completes.
TEST(RtHostEdge, BackToBackFaultsExhaustBudget) {
  std::vector<rt::PosixTask> tasks = {
      make_task("hi", 5'000, 5'000, 500, 5'000, CritLevel::HI,
                /*max_attempts=*/3, /*adapt_threshold=*/99),
  };
  tasks[0].failure_prob = 0.95;  // virtually every attempt faults
  rt::PosixHostConfig cfg;
  cfg.core.adaptation = rt::Adaptation::kNone;
  cfg.horizon = 100'000;
  cfg.seed = 7;
  cfg.fault_model = rt::PosixFaultModel::kBernoulli;
  const BothTraces both = run_both(tasks, cfg);

  const Tick wcet = tasks[0].params.wcet;
  const auto check_trace = [wcet](const std::vector<Ev>& trace,
                                  const char* which) {
    std::size_t exhausted = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const Ev& e = trace[i];
      if (e.kind != kJobFail) continue;
      ++exhausted;
      // Exactly three attempt-fails for this job, back to back: each
      // re-execution runs uninterrupted (single task), so consecutive
      // faults are one segment WCET apart, the last at the kJobFail time.
      std::vector<Tick> fail_times;
      for (std::size_t j = 0; j < i; ++j) {
        if (trace[j].kind == kAttemptFail && trace[j].task == e.task &&
            trace[j].job == e.job) {
          fail_times.push_back(trace[j].time);
        }
      }
      ASSERT_EQ(fail_times.size(), 3u) << which;
      EXPECT_EQ(fail_times[1], fail_times[0] + wcet) << which;
      EXPECT_EQ(fail_times[2], fail_times[1] + wcet) << which;
      EXPECT_EQ(fail_times[2], e.time) << which;
      EXPECT_FALSE(has_event_before(trace, i, kComplete, e.task, e.job))
          << which << ": an exhausted job also completed";
    }
    // 20 jobs at p = 0.95 per attempt: the chance of zero exhaustions is
    // (1 - 0.95^3)^20 ~ 1e-17, and the run is seed-deterministic anyway.
    EXPECT_GT(exhausted, 0u) << which;
  };
  check_trace(both.posix, "posix");
  check_trace(both.des, "sim");
}
