// Regression test of the documented ready-queue total order
// (core.hpp, Core::job_before):
//   1. job_key   — effective (virtual) deadline, the EDF-VD rule
//   2. criticality — HI before LO
//   3. task id   — table order
//   4. job id    — FIFO within a task
// Every host must replay the same schedule, so this order is part of the
// trace-replay contract and must never change silently.
#include "ftmc/rt/core.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace rt = ftmc::rt;
using ftmc::CritLevel;
using rt::Tick;

namespace {

class OrderHost final : public rt::Host {
 public:
  std::vector<rt::Event> starts;

  Tick sample_segment_time(std::uint32_t) override { return 10; }
  bool sample_fault(std::uint32_t, int) override { return false; }
  void emit(const rt::Event& event) override {
    if (event.kind == rt::EventKind::kStart) starts.push_back(event);
  }
};

rt::TaskParams task(Tick deadline, CritLevel crit, int priority = 0) {
  rt::TaskParams p;
  p.period = 10'000;
  p.deadline = deadline;
  p.wcet = 10;
  p.virtual_deadline = deadline;
  p.crit = crit;
  p.max_attempts = 2;
  p.adapt_threshold = 99;  // never switch: this test is about ordering
  p.priority = priority;
  return p;
}

// Drains the ready set one completed job at a time and returns the
// (task, job) start order.
std::vector<std::pair<std::uint32_t, std::uint64_t>> drain(rt::Core& core,
                                                           OrderHost& host) {
  Tick now = 0;
  while (core.has_ready()) {
    core.dispatch(now);
    core.run_for(10);
    now += 10;
    core.on_segment_boundary(now);
  }
  std::vector<std::pair<std::uint32_t, std::uint64_t>> order;
  order.reserve(host.starts.size());
  for (const rt::Event& e : host.starts) order.emplace_back(e.task, e.job);
  return order;
}

}  // namespace

TEST(RtTieBreak, EarlierKeyDominatesEverything) {
  // A LO job with the earlier deadline beats a HI job with a later one:
  // criticality is only a tie-breaker, never a priority boost.
  OrderHost host;
  rt::CoreConfig cfg;
  cfg.policy = rt::Policy::kEdf;
  rt::Core core(cfg, host);
  core.add_task(task(500, CritLevel::HI));
  core.add_task(task(100, CritLevel::LO));
  core.start();
  core.on_release(0, 0);
  core.on_release(1, 0);
  const auto order = drain(core, host);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, 1u);  // LO, deadline 100
  EXPECT_EQ(order[1].first, 0u);  // HI, deadline 500
}

TEST(RtTieBreak, EqualKeyHiBeforeLo) {
  // Equal deadlines: HI first, even though the LO task has the lower
  // task id (so this really is the criticality rule, not table order).
  OrderHost host;
  rt::CoreConfig cfg;
  cfg.policy = rt::Policy::kEdf;
  rt::Core core(cfg, host);
  core.add_task(task(100, CritLevel::LO));
  core.add_task(task(100, CritLevel::HI));
  core.start();
  core.on_release(0, 0);
  core.on_release(1, 0);
  const auto order = drain(core, host);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, 1u);  // HI
  EXPECT_EQ(order[1].first, 0u);  // LO
}

TEST(RtTieBreak, EqualKeyEqualCritLowerTaskIdFirst) {
  OrderHost host;
  rt::CoreConfig cfg;
  cfg.policy = rt::Policy::kEdf;
  rt::Core core(cfg, host);
  core.add_task(task(100, CritLevel::LO));
  core.add_task(task(100, CritLevel::LO));
  core.add_task(task(100, CritLevel::LO));
  core.start();
  // Release in reverse table order to prove insertion order is irrelevant.
  core.on_release(2, 0);
  core.on_release(1, 0);
  core.on_release(0, 0);
  const auto order = drain(core, host);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0].first, 0u);
  EXPECT_EQ(order[1].first, 1u);
  EXPECT_EQ(order[2].first, 2u);
}

TEST(RtTieBreak, SameTaskFifoByJobId) {
  // Two jobs of the same task with identical keys (fixed-priority policy
  // keys every job of a task identically): earlier job id runs first.
  OrderHost host;
  rt::CoreConfig cfg;
  cfg.policy = rt::Policy::kFixedPriority;
  rt::Core core(cfg, host);
  core.add_task(task(1000, CritLevel::LO, /*priority=*/5));
  core.start();
  core.on_release(0, 0);
  core.on_release(0, 0);  // backlogged second job, same key
  const auto order = drain(core, host);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], (std::pair<std::uint32_t, std::uint64_t>{0u, 0u}));
  EXPECT_EQ(order[1], (std::pair<std::uint32_t, std::uint64_t>{0u, 1u}));
}

TEST(RtTieBreak, EdfVdTieOnVirtualDeadline) {
  // EDF-VD in LO mode keys HI jobs by release + VD. A HI job whose
  // virtual deadline coincides with a LO job's true deadline ties on the
  // key and the HI job wins.
  OrderHost host;
  rt::CoreConfig cfg;
  cfg.policy = rt::Policy::kEdfVd;
  rt::Core core(cfg, host);
  rt::TaskParams lo = task(300, CritLevel::LO);
  rt::TaskParams hi = task(600, CritLevel::HI);
  hi.virtual_deadline = 300;  // ties with the LO deadline
  core.add_task(lo);
  core.add_task(hi);
  core.start();
  core.on_release(0, 0);
  core.on_release(1, 0);
  const auto order = drain(core, host);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0].first, 1u);  // HI at its virtual deadline key
  EXPECT_EQ(order[1].first, 0u);
}

TEST(RtTieBreak, JobBeforeIsAStrictTotalOrderOnTheReadySet) {
  // Pairwise sanity over a mixed ready set: irreflexive, antisymmetric,
  // and total (exactly one of a<b / b<a for distinct jobs).
  OrderHost host;
  rt::CoreConfig cfg;
  cfg.policy = rt::Policy::kEdf;
  rt::Core core(cfg, host);
  core.add_task(task(100, CritLevel::LO));
  core.add_task(task(100, CritLevel::HI));
  core.add_task(task(200, CritLevel::LO));
  core.start();
  core.on_release(0, 0);
  core.on_release(0, 0);
  core.on_release(1, 0);
  core.on_release(2, 0);
  // Slots 0..3 are live (fresh core, no recycling yet).
  for (std::size_t a = 0; a < 4; ++a) {
    EXPECT_FALSE(core.job_before(a, a));
    for (std::size_t b = 0; b < 4; ++b) {
      if (a == b) continue;
      EXPECT_NE(core.job_before(a, b), core.job_before(b, a))
          << "slots " << a << " and " << b;
    }
  }
}
