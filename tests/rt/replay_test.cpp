// Tests of the differential trace-replay machinery (check/replay.hpp):
// the sim-task round trip, replay identity on the FMS case study, the
// diff's ability to actually detect divergences, and the registered
// trace-replay properties on a concrete case.
#include "ftmc/check/replay.hpp"

#include <gtest/gtest.h>

#include "ftmc/fms/fms.hpp"
#include "ftmc/sim/model.hpp"

namespace rt = ftmc::rt;
namespace sim = ftmc::sim;
namespace check = ftmc::check;
namespace fms = ftmc::fms;

namespace {

std::vector<rt::PosixTask> fms_posix_tasks(double fault_prob) {
  std::vector<rt::PosixTask> tasks = check::posix_tasks_from_sim(
      sim::build_sim_tasks(fms::canonical_fms_instance(), /*n_hi=*/3,
                           /*n_lo=*/2, /*n_adapt=*/2,
                           /*virtual_deadline_factor=*/0.7));
  for (rt::PosixTask& t : tasks) t.failure_prob = fault_prob;
  return tasks;
}

rt::PosixHostConfig fms_config() {
  rt::PosixHostConfig cfg;
  cfg.core.policy = rt::Policy::kEdfVd;
  cfg.core.adaptation = rt::Adaptation::kDegradation;
  cfg.core.degradation_factor = fms::kFmsDegradationFactor;
  cfg.core.mode_reset_on_idle = true;
  cfg.horizon = 2'000'000;  // 2 simulated seconds
  cfg.time_scale = 0.0;     // free-run
  cfg.seed = 42;
  cfg.fault_model = rt::PosixFaultModel::kBernoulli;
  cfg.trace_capacity = 200'000;
  return cfg;
}

}  // namespace

TEST(RtReplay, SimTaskRoundTripPreservesAllFields) {
  const std::vector<sim::SimTask> sim_tasks = sim::build_sim_tasks(
      fms::canonical_fms_instance(), 3, 2, 2, 0.7);
  const std::vector<rt::PosixTask> posix = check::posix_tasks_from_sim(sim_tasks);
  ASSERT_EQ(posix.size(), sim_tasks.size());
  for (std::size_t i = 0; i < posix.size(); ++i) {
    const sim::SimTask& s = sim_tasks[i];
    const rt::PosixTask& p = posix[i];
    EXPECT_EQ(p.name, s.name);
    EXPECT_EQ(p.params.period, s.period);
    EXPECT_EQ(p.params.deadline, s.deadline);
    EXPECT_EQ(p.params.wcet, s.wcet);
    EXPECT_EQ(p.params.virtual_deadline, s.virtual_deadline);
    EXPECT_EQ(p.params.crit, s.crit);
    EXPECT_EQ(p.params.max_attempts, s.max_attempts);
    EXPECT_EQ(p.params.adapt_threshold, s.adapt_threshold);
    EXPECT_EQ(p.params.priority, s.priority);
    EXPECT_EQ(p.params.segments, s.segments);
    EXPECT_DOUBLE_EQ(p.failure_prob, s.failure_prob);
    EXPECT_DOUBLE_EQ(p.checkpoint_overhead, s.checkpoint_overhead);
  }
}

TEST(RtReplay, FmsRunReplaysIdentically) {
  // n' = 2 for the FMS instance, so the switch needs two faults within
  // one job: inflate the per-attempt fault probability accordingly.
  const std::vector<rt::PosixTask> tasks = fms_posix_tasks(0.35);
  const rt::PosixHostConfig cfg = fms_config();
  rt::PosixHost host(tasks, cfg);
  const rt::PosixResult result = host.run();
  // The run must actually exercise the interesting machinery for the
  // identity claim to mean anything.
  ASSERT_GT(result.trace.size(), 100u);
  EXPECT_GT(result.counters.mode_switches, 0u);

  const check::ReplayDiff diff =
      check::replay_through_sim(tasks, cfg, result.trace);
  EXPECT_TRUE(diff.identical) << diff.message;
  EXPECT_EQ(diff.first_divergence, SIZE_MAX);
  EXPECT_EQ(diff.posix_events, diff.sim_events);
  EXPECT_TRUE(diff.message.empty());
}

TEST(RtReplay, DetectsASingleMutatedEvent) {
  const std::vector<rt::PosixTask> tasks = fms_posix_tasks(0.05);
  const rt::PosixHostConfig cfg = fms_config();
  rt::PosixHost host(tasks, cfg);
  rt::PosixResult result = host.run();
  ASSERT_GT(result.trace.size(), 10u);

  const std::size_t victim = result.trace.size() / 2;
  result.trace[victim].time += 1;
  const check::ReplayDiff diff =
      check::replay_through_sim(tasks, cfg, result.trace);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_divergence, victim);
  EXPECT_NE(diff.message.find("diverges"), std::string::npos) << diff.message;
}

TEST(RtReplay, DetectsATruncatedTrace) {
  const std::vector<rt::PosixTask> tasks = fms_posix_tasks(0.05);
  const rt::PosixHostConfig cfg = fms_config();
  rt::PosixHost host(tasks, cfg);
  rt::PosixResult result = host.run();
  ASSERT_GT(result.trace.size(), 10u);

  result.trace.pop_back();
  const check::ReplayDiff diff =
      check::replay_through_sim(tasks, cfg, result.trace);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.first_divergence, result.trace.size());
  EXPECT_NE(diff.message.find("lengths"), std::string::npos) << diff.message;
}

TEST(RtReplay, RegisteredPropertiesPassOnTheFmsCase) {
  check::Case c;
  c.ts = fms::canonical_fms_instance();
  c.n_hi = 3;
  c.n_lo = 2;
  c.n_adapt = 2;
  c.degradation_factor = fms::kFmsDegradationFactor;
  c.seed = 123;
  const check::PropertyContext ctx;

  const check::Outcome a = check::p_replay_adversary_killing(c, ctx);
  EXPECT_EQ(a.verdict, check::Verdict::kPass) << a.message;
  const check::Outcome b = check::p_replay_bernoulli_degradation(c, ctx);
  EXPECT_EQ(b.verdict, check::Verdict::kPass) << b.message;
  const check::Outcome d = check::p_replay_determinism(c, ctx);
  EXPECT_EQ(d.verdict, check::Verdict::kPass) << d.message;
}
