/// \file merge_property_test.cpp
/// \brief Property: the finalized campaign directory is byte-identical
///        to the single-process reference for every worker count, every
///        (seeded) shuffle of lease completion order, and every resume
///        from a truncated coordinator journal.
///
/// This is the fleet subsystem's headline invariant, tested the blunt
/// way: drive the coordinator engine directly through handle() — no
/// sockets, so interleavings can be forced exactly — and compare whole
/// files with operator== afterwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "ftmc/campaign/journal.hpp"
#include "ftmc/campaign/runner.hpp"
#include "ftmc/campaign/spec.hpp"
#include "ftmc/fleet/coordinator.hpp"
#include "ftmc/fleet/protocol.hpp"
#include "ftmc/io/json.hpp"

namespace ftmc::fleet {
namespace {

[[nodiscard]] campaign::CampaignSpec property_spec() {
  return campaign::parse_spec_text(R"({
    "name": "mergeprop",
    "schedulers": ["edf_vd_killing", "amc_rtb"],
    "failure_probs": [1e-3, 1e-5],
    "utilizations": [0.3, 0.6, 0.9],
    "sets_per_point": 4,
    "seed": 20140601
  })");
}

[[nodiscard]] std::string scratch_dir(const std::string& leaf) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           "ftmc_merge_property" / leaf)
                              .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct Files {
  std::string journal;
  std::string results;
};

[[nodiscard]] Files files_of(const std::string& dir) {
  return {campaign::read_file(dir + "/journal.jsonl"),
          campaign::read_file(dir + "/results.json")};
}

/// The single-process reference bytes (computed once per suite).
[[nodiscard]] const Files& reference() {
  static const Files reference_files = [] {
    const std::string dir = scratch_dir("reference");
    campaign::RunnerOptions runner;
    runner.dir = dir;
    const campaign::CampaignResult result =
        campaign::run_campaign(property_spec(), runner);
    EXPECT_TRUE(result.complete);
    return files_of(dir);
  }();
  return reference_files;
}

struct PendingResult {
  std::string worker;
  std::uint64_t lease_id = 0;
  std::vector<ResultRecord> records;
};

/// Drives one campaign to completion: `workers` round-robin over lease
/// requests; completed leases are *submitted* in an order shuffled by
/// `seed` (in waves, so later leases can land before earlier ones).
void run_shuffled(const std::string& dir, int workers,
                  std::uint32_t seed) {
  const campaign::CampaignSpec spec = property_spec();
  const std::vector<campaign::CellSpec> cells =
      campaign::expand_cells(spec);
  CoordinatorOptions options;
  options.dir = dir;
  options.lease_cells = 2;
  Coordinator coordinator(spec, options);
  std::mt19937 rng(seed);

  for (int w = 0; w < workers; ++w) {
    (void)coordinator.handle(
        hello_to_json("w" + std::to_string(w)));
  }

  while (!coordinator.complete()) {
    // One wave: every worker grabs one lease (until drained), computes
    // it; then the wave's results arrive in shuffled order.
    std::vector<PendingResult> wave;
    for (int w = 0; w < workers; ++w) {
      const std::string worker = "w" + std::to_string(w);
      const io::json::Value grant =
          io::json::parse(coordinator.handle(lease_to_json(worker)));
      if (grant.at("type").as_string() != "lease") continue;
      PendingResult pending;
      pending.worker = worker;
      pending.lease_id = grant.at("lease_id").as_uint64();
      for (const io::json::Value& v : grant.at("indices").items()) {
        const std::size_t index =
            static_cast<std::size_t>(v.as_uint64());
        const campaign::CellCounts counts =
            campaign::run_cell(cells[index]);
        pending.records.push_back(ResultRecord{
            index,
            campaign::CellRecord{campaign::cell_hash(cells[index]),
                                 counts.accept_without,
                                 counts.accept_with}});
      }
      wave.push_back(std::move(pending));
    }
    ASSERT_FALSE(wave.empty()) << "drained without completing";
    std::shuffle(wave.begin(), wave.end(), rng);
    for (const PendingResult& pending : wave) {
      const io::json::Value ack = io::json::parse(coordinator.handle(
          result_to_json(pending.worker, pending.lease_id,
                         pending.records)));
      ASSERT_EQ(ack.at("type").as_string(), "ack");
      ASSERT_EQ(ack.at("rejected").as_uint64(), 0u);
    }
  }
}

TEST(MergeProperty, ByteIdenticalAcrossWorkerCountsAndOrders) {
  for (const int workers : {1, 2, 8}) {
    for (const std::uint32_t seed : {1u, 2u, 3u}) {
      const std::string dir = scratch_dir(
          "w" + std::to_string(workers) + "_s" + std::to_string(seed));
      run_shuffled(dir, workers, seed);
      const Files files = files_of(dir);
      EXPECT_EQ(files.journal, reference().journal)
          << "workers=" << workers << " seed=" << seed;
      EXPECT_EQ(files.results, reference().results)
          << "workers=" << workers << " seed=" << seed;
    }
  }
}

TEST(MergeProperty, ResumeFromTruncatedJournalIsByteIdentical) {
  // Crash the coordinator by truncating its journal at varying points —
  // including mid-line — and let a fresh coordinator finish the job.
  const std::string donor = scratch_dir("truncation_donor");
  run_shuffled(donor, 2, 7u);
  const std::string full_journal =
      campaign::read_file(donor + "/journal.jsonl");
  ASSERT_FALSE(full_journal.empty());

  for (const double fraction : {0.0, 0.33, 0.5, 0.95}) {
    const std::string dir =
        scratch_dir("trunc_" + std::to_string(fraction));
    const std::size_t cut = static_cast<std::size_t>(
        static_cast<double>(full_journal.size()) * fraction);
    {
      std::ofstream journal(dir + "/journal.jsonl", std::ios::binary);
      journal << full_journal.substr(0, cut);
    }
    run_shuffled(dir, 2, 11u);
    const Files files = files_of(dir);
    EXPECT_EQ(files.journal, reference().journal)
        << "fraction=" << fraction;
    EXPECT_EQ(files.results, reference().results)
        << "fraction=" << fraction;
  }
}

}  // namespace
}  // namespace ftmc::fleet
