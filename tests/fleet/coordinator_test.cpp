/// \file coordinator_test.cpp
/// \brief Unit tests for fleet::Coordinator: the lease lifecycle
///        (issue, drain, expiry, reissue), idempotent result folding,
///        hash validation, and the byte-identity of the finalized
///        campaign directory against a single-process run.
///
/// Everything runs through handle() with a fake clock — no sockets, no
/// sleeps, fully deterministic.
#include "ftmc/fleet/coordinator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ftmc/campaign/journal.hpp"
#include "ftmc/campaign/runner.hpp"
#include "ftmc/campaign/spec.hpp"
#include "ftmc/fleet/protocol.hpp"
#include "ftmc/io/json.hpp"

namespace ftmc::fleet {
namespace {

[[nodiscard]] campaign::CampaignSpec small_spec() {
  return campaign::parse_spec_text(R"({
    "name": "fleettest",
    "schedulers": ["edf_vd_killing"],
    "failure_probs": [1e-3, 1e-5],
    "utilizations": [0.3, 0.6],
    "sets_per_point": 5,
    "seed": 20140601
  })");
}

/// Scratch directory unique to the running test, wiped on setup.
[[nodiscard]] std::string scratch_dir(const std::string& leaf) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ftmc_fleet_test" / leaf)
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct FakeClock {
  std::shared_ptr<std::int64_t> now = std::make_shared<std::int64_t>(0);
  [[nodiscard]] ClockFn fn() const {
    return [now = now] { return *now; };
  }
  void advance(std::int64_t ms) { *now += ms; }
};

[[nodiscard]] io::json::Value call(Coordinator& coordinator,
                                   const std::string& request) {
  return io::json::parse(coordinator.handle(request));
}

/// Requests one lease; nullopt on drained/done.
[[nodiscard]] std::optional<std::pair<std::uint64_t,
                                      std::vector<std::size_t>>>
take_lease(Coordinator& coordinator, const std::string& worker) {
  const io::json::Value grant = call(coordinator, lease_to_json(worker));
  if (grant.at("type").as_string() != "lease") return std::nullopt;
  std::vector<std::size_t> indices;
  for (const io::json::Value& v : grant.at("indices").items()) {
    indices.push_back(static_cast<std::size_t>(v.as_uint64()));
  }
  return std::make_pair(grant.at("lease_id").as_uint64(),
                        std::move(indices));
}

/// Computes real records for a set of cell indices (run_cell is cheap at
/// sets_per_point = 5).
[[nodiscard]] std::vector<ResultRecord> records_for(
    const std::vector<campaign::CellSpec>& cells,
    const std::vector<std::size_t>& indices) {
  std::vector<ResultRecord> records;
  records.reserve(indices.size());
  for (const std::size_t index : indices) {
    const campaign::CellCounts counts = campaign::run_cell(cells[index]);
    records.push_back(ResultRecord{
        index, campaign::CellRecord{campaign::cell_hash(cells[index]),
                                    counts.accept_without,
                                    counts.accept_with}});
  }
  return records;
}

[[nodiscard]] CoordinatorOptions options_with(const FakeClock& clock,
                                              std::string dir = {},
                                              std::size_t lease_cells = 2) {
  CoordinatorOptions options;
  options.dir = std::move(dir);
  options.lease_cells = lease_cells;
  options.lease_ttl_ms = 1000;
  options.now_ms = clock.fn();
  return options;
}

TEST(Coordinator, WelcomeEchoesCanonicalSpecAndGridSize) {
  FakeClock clock;
  Coordinator coordinator(small_spec(), options_with(clock));
  const io::json::Value welcome =
      call(coordinator, hello_to_json("w0"));
  EXPECT_EQ(welcome.at("type").as_string(), "welcome");
  EXPECT_EQ(welcome.at("protocol").as_string(), kProtocolVersion);
  EXPECT_EQ(welcome.at("cells_total").as_uint64(), 4u);
  EXPECT_FALSE(welcome.at("complete").as_bool());
  // The embedded spec is the canonical form: re-expanding it yields the
  // coordinator's own grid (the invariant leases-by-index relies on).
  const campaign::CampaignSpec echoed =
      campaign::parse_spec(welcome.at("spec"));
  EXPECT_EQ(campaign::spec_to_json(echoed),
            campaign::spec_to_json(small_spec()));
  EXPECT_EQ(coordinator.active_workers(), 1u);
}

TEST(Coordinator, ProtocolMismatchIsAnError) {
  FakeClock clock;
  Coordinator coordinator(small_spec(), options_with(clock));
  const io::json::Value response = call(
      coordinator,
      "{\"type\":\"hello\",\"protocol\":\"ftmc-fleet-v0\",\"worker\":\"w\"}");
  EXPECT_EQ(response.at("type").as_string(), "error");
  EXPECT_EQ(coordinator.active_workers(), 0u);
}

TEST(Coordinator, MalformedRequestAnswersErrorNotThrow) {
  FakeClock clock;
  Coordinator coordinator(small_spec(), options_with(clock));
  EXPECT_EQ(call(coordinator, "not json").at("type").as_string(), "error");
  EXPECT_EQ(call(coordinator, "{\"type\":\"launch_missiles\"}")
                .at("type")
                .as_string(),
            "error");
}

TEST(Coordinator, LeasesPartitionTheGridThenDrain) {
  FakeClock clock;
  Coordinator coordinator(small_spec(), options_with(clock));
  std::set<std::size_t> seen;
  for (int i = 0; i < 2; ++i) {
    const auto lease = take_lease(coordinator, "w0");
    ASSERT_TRUE(lease.has_value());
    EXPECT_LE(lease->second.size(), 2u);
    for (const std::size_t index : lease->second) {
      EXPECT_TRUE(seen.insert(index).second) << "index leased twice";
    }
  }
  EXPECT_EQ(seen.size(), 4u);
  // Grid fully leased out: drained, not done (nothing completed yet).
  const io::json::Value drained =
      call(coordinator, lease_to_json("w0"));
  EXPECT_EQ(drained.at("type").as_string(), "drained");
  EXPECT_FALSE(drained.at("complete").as_bool());
}

TEST(Coordinator, ExpiredLeaseIsReissued) {
  FakeClock clock;
  Coordinator coordinator(small_spec(),
                          options_with(clock, {}, /*lease_cells=*/4));
  const auto lost = take_lease(coordinator, "crashed");
  ASSERT_TRUE(lost.has_value());
  EXPECT_EQ(lost->second.size(), 4u);
  // Within the TTL the grid stays drained for everyone else.
  EXPECT_EQ(call(coordinator, lease_to_json("w1")).at("type").as_string(),
            "drained");
  clock.advance(1001);
  const auto reissued = take_lease(coordinator, "w1");
  ASSERT_TRUE(reissued.has_value());
  EXPECT_NE(reissued->first, lost->first) << "lease ids are unique";
  EXPECT_EQ(std::set<std::size_t>(reissued->second.begin(),
                                  reissued->second.end()),
            std::set<std::size_t>(lost->second.begin(),
                                  lost->second.end()));
}

TEST(Coordinator, LateResultAfterExpiryScoresDuplicatesNotConflicts) {
  FakeClock clock;
  const campaign::CampaignSpec spec = small_spec();
  const std::vector<campaign::CellSpec> cells =
      campaign::expand_cells(spec);
  Coordinator coordinator(spec, options_with(clock, {}, 4));

  const auto lost = take_lease(coordinator, "slow");
  ASSERT_TRUE(lost.has_value());
  clock.advance(1001);
  const auto reissued = take_lease(coordinator, "w1");
  ASSERT_TRUE(reissued.has_value());
  const io::json::Value first_ack =
      call(coordinator, result_to_json("w1", reissued->first,
                                       records_for(cells,
                                                   reissued->second)));
  EXPECT_EQ(first_ack.at("accepted").as_uint64(), 4u);
  EXPECT_TRUE(first_ack.at("complete").as_bool());

  // The kill -9 survivor's answer finally arrives: pure duplicates.
  const io::json::Value late_ack =
      call(coordinator, result_to_json("slow", lost->first,
                                       records_for(cells, lost->second)));
  EXPECT_EQ(late_ack.at("accepted").as_uint64(), 0u);
  EXPECT_EQ(late_ack.at("duplicates").as_uint64(), 4u);
  EXPECT_TRUE(late_ack.at("complete").as_bool());
}

TEST(Coordinator, WrongHashIsRejectedAndNotMerged) {
  FakeClock clock;
  const campaign::CampaignSpec spec = small_spec();
  const std::vector<campaign::CellSpec> cells =
      campaign::expand_cells(spec);
  Coordinator coordinator(spec, options_with(clock, {}, 1));
  const auto lease = take_lease(coordinator, "w0");
  ASSERT_TRUE(lease.has_value());
  std::vector<ResultRecord> records =
      records_for(cells, lease->second);
  records[0].record.hash = "0123456789abcdef";  // skewed grid
  const io::json::Value ack = call(
      coordinator, result_to_json("w0", lease->first, records));
  EXPECT_EQ(ack.at("rejected").as_uint64(), 1u);
  EXPECT_EQ(ack.at("accepted").as_uint64(), 0u);
  EXPECT_EQ(coordinator.cells_completed(), 0u);
  // The rejected cell goes back to pending (at the back of the queue)
  // rather than waiting for the lease TTL: draining the grid re-covers
  // it.
  std::set<std::size_t> released;
  while (const auto retry = take_lease(coordinator, "w0")) {
    released.insert(retry->second.begin(), retry->second.end());
  }
  EXPECT_TRUE(released.count(lease->second.front()) == 1);
  EXPECT_EQ(released.size(), 4u);
}

TEST(Coordinator, DoneOnceComplete) {
  FakeClock clock;
  const campaign::CampaignSpec spec = small_spec();
  const std::vector<campaign::CellSpec> cells =
      campaign::expand_cells(spec);
  Coordinator coordinator(spec, options_with(clock, {}, 4));
  const auto lease = take_lease(coordinator, "w0");
  ASSERT_TRUE(lease.has_value());
  (void)call(coordinator, result_to_json("w0", lease->first,
                                         records_for(cells,
                                                     lease->second)));
  EXPECT_TRUE(coordinator.complete());
  EXPECT_EQ(call(coordinator, lease_to_json("w0")).at("type").as_string(),
            "done");
  // Farewell bookkeeping: bye retires the worker.
  const io::json::Value goodbye =
      call(coordinator, bye_to_json("w0", 4, 0.5, {}));
  EXPECT_EQ(goodbye.at("type").as_string(), "goodbye");
  EXPECT_TRUE(goodbye.at("complete").as_bool());
}

TEST(Coordinator, FinalizedDirMatchesSingleProcessRunByteForByte) {
  FakeClock clock;
  const campaign::CampaignSpec spec = small_spec();
  const std::vector<campaign::CellSpec> cells =
      campaign::expand_cells(spec);

  const std::string solo_dir = scratch_dir("solo");
  campaign::RunnerOptions runner;
  runner.dir = solo_dir;
  const campaign::CampaignResult solo =
      campaign::run_campaign(spec, runner);
  ASSERT_TRUE(solo.complete);

  const std::string fleet_dir = scratch_dir("fleet");
  Coordinator coordinator(spec, options_with(clock, fleet_dir, 3));
  (void)call(coordinator, hello_to_json("w0"));
  while (const auto lease = take_lease(coordinator, "w0")) {
    (void)call(coordinator,
               result_to_json("w0", lease->first,
                              records_for(cells, lease->second)));
  }
  ASSERT_TRUE(coordinator.complete());

  EXPECT_EQ(campaign::read_file(solo_dir + "/journal.jsonl"),
            campaign::read_file(fleet_dir + "/journal.jsonl"));
  EXPECT_EQ(campaign::read_file(solo_dir + "/results.json"),
            campaign::read_file(fleet_dir + "/results.json"));
  EXPECT_EQ(campaign::read_file(solo_dir + "/spec.json"),
            campaign::read_file(fleet_dir + "/spec.json"));
}

TEST(Coordinator, ResumesFromTruncatedJournal) {
  FakeClock clock;
  const campaign::CampaignSpec spec = small_spec();
  const std::vector<campaign::CellSpec> cells =
      campaign::expand_cells(spec);

  // Reference bytes from an uninterrupted single-process run.
  const std::string solo_dir = scratch_dir("resume_solo");
  campaign::RunnerOptions runner;
  runner.dir = solo_dir;
  ASSERT_TRUE(campaign::run_campaign(spec, runner).complete);

  // A coordinator that "crashed": two cells journaled, then a torn line.
  const std::string dir = scratch_dir("resume_fleet");
  {
    Coordinator first(spec, options_with(clock, dir, 2));
    const auto lease = take_lease(first, "w0");
    ASSERT_TRUE(lease.has_value());
    (void)call(first, result_to_json("w0", lease->first,
                                     records_for(cells, lease->second)));
  }
  {
    std::ofstream torn(dir + "/journal.jsonl", std::ios::app);
    torn << "{\"hash\":\"feedfeedfeedfe";  // crash mid-append
  }

  Coordinator resumed(spec, options_with(clock, dir, 2));
  EXPECT_EQ(resumed.cache_hits(), 2u);
  while (const auto lease = take_lease(resumed, "w1")) {
    (void)call(resumed, result_to_json("w1", lease->first,
                                       records_for(cells,
                                                   lease->second)));
  }
  ASSERT_TRUE(resumed.complete());
  EXPECT_EQ(campaign::read_file(solo_dir + "/journal.jsonl"),
            campaign::read_file(dir + "/journal.jsonl"));
  EXPECT_EQ(campaign::read_file(solo_dir + "/results.json"),
            campaign::read_file(dir + "/results.json"));
}

TEST(Coordinator, FullyJournaledCampaignIsCompleteAtConstruction) {
  FakeClock clock;
  const campaign::CampaignSpec spec = small_spec();
  const std::string dir = scratch_dir("prefilled");
  campaign::RunnerOptions runner;
  runner.dir = dir;
  ASSERT_TRUE(campaign::run_campaign(spec, runner).complete);
  const std::string journal_before =
      campaign::read_file(dir + "/journal.jsonl");

  Coordinator coordinator(spec, options_with(clock, dir));
  EXPECT_TRUE(coordinator.complete());
  EXPECT_EQ(coordinator.cache_hits(), 4u);
  const io::json::Value welcome =
      call(coordinator, hello_to_json("w0"));
  EXPECT_TRUE(welcome.at("complete").as_bool());
  EXPECT_EQ(call(coordinator, lease_to_json("w0")).at("type").as_string(),
            "done");
  EXPECT_EQ(campaign::read_file(dir + "/journal.jsonl"), journal_before);
}

}  // namespace
}  // namespace ftmc::fleet
