/// \file fleet_service_test.cpp
/// \brief End-to-end fleet test over real loopback TCP: a
///        CoordinatorService and in-process run_worker() loops, checking
///        completion, clean drain, and byte-identity with the
///        single-process runner.
#include "ftmc/fleet/service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "ftmc/campaign/journal.hpp"
#include "ftmc/campaign/runner.hpp"
#include "ftmc/campaign/spec.hpp"
#include "ftmc/fleet/worker.hpp"

namespace ftmc::fleet {
namespace {

[[nodiscard]] campaign::CampaignSpec service_spec() {
  return campaign::parse_spec_text(R"({
    "name": "servicetest",
    "schedulers": ["edf_vd_killing"],
    "failure_probs": [1e-3, 1e-5],
    "utilizations": [0.3, 0.6, 0.9],
    "sets_per_point": 4,
    "seed": 20140601
  })");
}

[[nodiscard]] std::string scratch_dir(const std::string& leaf) {
  const std::string dir = (std::filesystem::temp_directory_path() /
                           "ftmc_fleet_service" / leaf)
                              .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(CoordinatorService, TwoWorkersOverTcpMatchSingleProcessBytes) {
  const std::string solo_dir = scratch_dir("solo");
  campaign::RunnerOptions runner;
  runner.dir = solo_dir;
  ASSERT_TRUE(campaign::run_campaign(service_spec(), runner).complete);

  const std::string fleet_dir = scratch_dir("fleet");
  CoordinatorOptions coordinator_options;
  coordinator_options.dir = fleet_dir;
  coordinator_options.lease_cells = 2;
  ServiceOptions service_options;
  service_options.linger_ms = 10000;  // workers always get their goodbye
  CoordinatorService service(service_spec(), coordinator_options,
                             service_options);
  ASSERT_GT(service.port(), 0);

  std::vector<WorkerReport> reports(2);
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&service, &reports, w] {
      WorkerOptions options;
      options.port = service.port();
      options.name = "w" + std::to_string(w);
      options.poll_ms = 20;
      reports[static_cast<std::size_t>(w)] = run_worker(options);
    });
  }
  const campaign::CampaignResult result = service.serve();
  for (std::thread& worker : workers) worker.join();

  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.cells_total, 6u);
  EXPECT_EQ(reports[0].cells_computed + reports[1].cells_computed, 6u);
  EXPECT_EQ(campaign::read_file(solo_dir + "/journal.jsonl"),
            campaign::read_file(fleet_dir + "/journal.jsonl"));
  EXPECT_EQ(campaign::read_file(solo_dir + "/results.json"),
            campaign::read_file(fleet_dir + "/results.json"));
}

TEST(CoordinatorService, AlreadyCompleteCampaignDrainsOnLinger) {
  // A coordinator whose journal already covers the grid never sees a
  // worker; the linger clock alone must conclude serve().
  const std::string dir = scratch_dir("prefilled");
  campaign::RunnerOptions runner;
  runner.dir = dir;
  ASSERT_TRUE(campaign::run_campaign(service_spec(), runner).complete);

  CoordinatorOptions coordinator_options;
  coordinator_options.dir = dir;
  ServiceOptions service_options;
  service_options.linger_ms = 50;
  service_options.net.accept_poll_ms = 10;
  CoordinatorService service(service_spec(), coordinator_options,
                             service_options);
  const campaign::CampaignResult result = service.serve();
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.cache_hits, 6u);
}

TEST(CoordinatorService, WorkerReconnectBudgetSurfacesDeadCoordinator) {
  std::uint16_t dead_port = 0;
  {
    CoordinatorOptions coordinator_options;
    ServiceOptions service_options;
    CoordinatorService probe(service_spec(), coordinator_options,
                             service_options);
    dead_port = probe.port();
  }
  WorkerOptions options;
  options.port = dead_port;
  options.connect_timeout_ms = 200;
  options.reconnect_attempts = 2;
  options.reconnect_backoff_ms = 10;
  EXPECT_THROW((void)run_worker(options), std::runtime_error);
}

}  // namespace
}  // namespace ftmc::fleet
