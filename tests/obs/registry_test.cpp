/// Tests of the metrics registry: counter/gauge/histogram semantics,
/// bucket placement and quantile interpolation, concurrent == serial
/// totals, the disabled no-op path, and the JSON snapshot shape.
#include "ftmc/obs/registry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

namespace ftmc::obs {
namespace {

TEST(Counter, AccumulatesAndSnapshotsInRegistrationOrder) {
  Registry reg;
  Counter a = reg.counter("test.a");
  Counter b = reg.counter("test.b");
  a.inc();
  a.inc(4);
  b.inc(2);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 2u);

  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "test.a");
  EXPECT_EQ(snap.counters[0].second, 5u);
  EXPECT_EQ(snap.counters[1].first, "test.b");
  EXPECT_EQ(snap.counters[1].second, 2u);
}

TEST(Counter, SameNameSharesTheCell) {
  Registry reg;
  Counter a = reg.counter("test.shared");
  Counter b = reg.counter("test.shared");
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2u);
  EXPECT_EQ(reg.snapshot().counters.size(), 1u);
}

TEST(Counter, DefaultConstructedHandleIsInert) {
  Counter c;
  c.inc();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsEqualSerialTotal) {
  Registry reg;
  Counter c = reg.counter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      Counter mine = reg.counter("test.concurrent");
      for (std::uint64_t i = 0; i < kPerThread; ++i) mine.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAddAndMax) {
  Registry reg;
  Gauge g = reg.gauge("test.gauge");
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.set_max(2.0);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 4.5);
  g.set_max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

TEST(Gauge, ConcurrentAddsEqualSerialTotal) {
  Registry reg;
  Gauge g = reg.gauge("test.gauge.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      Gauge mine = reg.gauge("test.gauge.concurrent");
      for (int i = 0; i < kPerThread; ++i) mine.add(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), kThreads * kPerThread);
}

TEST(Histogram, BucketPlacement) {
  Registry reg;
  Histogram h = reg.histogram("test.hist", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (upper bound inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(100.0);  // bucket 2
  h.observe(1e9);    // overflow bucket

  const Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0];
  ASSERT_EQ(hs.bounds.size(), 3u);
  ASSERT_EQ(hs.counts.size(), 4u);
  EXPECT_EQ(hs.counts[0], 2u);
  EXPECT_EQ(hs.counts[1], 1u);
  EXPECT_EQ(hs.counts[2], 1u);
  EXPECT_EQ(hs.counts[3], 1u);
  EXPECT_EQ(hs.count, 5u);
  EXPECT_DOUBLE_EQ(hs.sum, 0.5 + 1.0 + 5.0 + 100.0 + 1e9);
}

TEST(Histogram, QuantileInterpolatesInsideBucket) {
  Registry reg;
  Histogram h = reg.histogram("test.quantile", {10.0, 20.0});
  // 10 values in (0,10], 10 in (10,20]: the median sits at the boundary.
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(15.0);

  const HistogramSnapshot hs = reg.snapshot().histograms[0];
  // q=0.5 -> rank 10 == the full first bucket -> its upper edge.
  EXPECT_DOUBLE_EQ(hs.quantile(0.5), 10.0);
  // q=0.75 -> rank 15, halfway through (10,20] -> 15 by interpolation.
  EXPECT_DOUBLE_EQ(hs.quantile(0.75), 15.0);
  // q=0.25 -> rank 5, halfway through (0,10].
  EXPECT_DOUBLE_EQ(hs.quantile(0.25), 5.0);
  EXPECT_DOUBLE_EQ(hs.mean(), 10.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Registry reg;
  Histogram empty = reg.histogram("test.empty", {1.0});
  EXPECT_DOUBLE_EQ(reg.snapshot().histograms[0].quantile(0.5), 0.0);

  Histogram over = reg.histogram("test.overflow", {1.0});
  over.observe(50.0);  // only the overflow bucket is occupied
  const HistogramSnapshot hs = reg.snapshot().histograms[1];
  // The overflow bucket has no finite upper edge: report its lower edge.
  EXPECT_DOUBLE_EQ(hs.quantile(0.99), 1.0);
}

TEST(Histogram, QuantileExtremeRanksAndDegenerateBuckets) {
  // Built directly (the fields are public) so the bucket occupancy is
  // exact rather than a side effect of observe() rounding.
  HistogramSnapshot hs;
  hs.bounds = {10.0, 20.0, 30.0};
  hs.counts = {0, 4, 4, 0};  // zero-count first bucket, empty overflow
  hs.count = 8;
  hs.sum = 8.0 * 20.0;

  // q=0 asks for rank 0, which lands in the empty first bucket:
  // interpolation there must not divide by zero and reports the
  // bucket's upper edge.
  EXPECT_DOUBLE_EQ(hs.quantile(0.0), 10.0);
  // q=1 asks for the full count; all mass fits under the last finite
  // bound, so the answer is that bound, not the overflow edge.
  EXPECT_DOUBLE_EQ(hs.quantile(1.0), 30.0);
  // Rank 4 is the full (10,20] bucket: its upper edge.
  EXPECT_DOUBLE_EQ(hs.quantile(0.5), 20.0);

  // All mass in the overflow bucket: every quantile reports the last
  // finite bound (the overflow bucket's lower edge).
  HistogramSnapshot over;
  over.bounds = {1.0, 2.0};
  over.counts = {0, 0, 7};
  over.count = 7;
  over.sum = 700.0;
  EXPECT_DOUBLE_EQ(over.quantile(0.01), 2.0);
  EXPECT_DOUBLE_EQ(over.quantile(1.0), 2.0);
}

TEST(Histogram, QuantileWithNegativeBoundsInterpolatesFromTheBound) {
  // A first bucket with a negative upper bound: the implicit lower edge
  // is min(0, bounds[0]) = bounds[0] itself, so the whole first bucket
  // collapses to its bound instead of interpolating up from zero (which
  // would produce values *above* the bucket's range).
  HistogramSnapshot hs;
  hs.bounds = {-10.0, 0.0, 10.0};
  hs.counts = {2, 2, 2, 0};
  hs.count = 6;
  hs.sum = 0.0;
  // The first bucket's range is [-10, -10]: every rank inside it is the
  // bound itself.
  EXPECT_DOUBLE_EQ(hs.quantile(0.25), -10.0);
  // Rank 3 is halfway through the (-10, 0] bucket.
  EXPECT_DOUBLE_EQ(hs.quantile(0.5), -5.0);
  EXPECT_DOUBLE_EQ(hs.quantile(1.0), 10.0);
}

TEST(Histogram, ConcurrentObservationsEqualSerialTotal) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      Histogram mine = reg.histogram("test.hist.concurrent", {10.0});
      for (int i = 0; i < kPerThread; ++i) mine.observe(1.0);
    });
  }
  for (auto& w : workers) w.join();
  const HistogramSnapshot hs = reg.snapshot().histograms[0];
  EXPECT_EQ(hs.count, kThreads * kPerThread);
  EXPECT_EQ(hs.counts[0], kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(hs.sum, kThreads * kPerThread);
}

TEST(Registry, DisabledRegistryIsANoOp) {
  Registry reg(/*enabled=*/false);
  Counter c = reg.counter("test.off.counter");
  Gauge g = reg.gauge("test.off.gauge");
  Histogram h = reg.histogram("test.off.hist");
  c.inc(100);
  g.set(5.0);
  g.add(5.0);
  g.set_max(5.0);
  h.observe(42.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(reg.snapshot().histograms[0].count, 0u);

  // Re-enabling makes the same handles live again.
  reg.enable();
  c.inc();
  EXPECT_EQ(c.value(), 1u);
  reg.enable(false);
  c.inc();
  EXPECT_EQ(c.value(), 1u);
}

TEST(Registry, SnapshotJsonHasTheDocumentedShape) {
  Registry reg;
  Counter c = reg.counter("test.json.counter");
  c.inc(3);
  Gauge g = reg.gauge("test.json.gauge");
  g.set(1.5);
  Histogram h = reg.histogram("test.json.hist", {1.0, 2.0});
  h.observe(0.5);

  const std::string json = reg.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  // Structural sanity: braces balance.
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Buckets, ExponentialAndLinear) {
  const auto exp = exponential_buckets(100.0, 4.0, 3);
  ASSERT_EQ(exp.size(), 3u);
  EXPECT_DOUBLE_EQ(exp[0], 100.0);
  EXPECT_DOUBLE_EQ(exp[1], 400.0);
  EXPECT_DOUBLE_EQ(exp[2], 1600.0);

  const auto lin = linear_buckets(10.0, 5.0, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[0], 10.0);
  EXPECT_DOUBLE_EQ(lin[1], 15.0);
  EXPECT_DOUBLE_EQ(lin[2], 20.0);
}

TEST(Registry, GlobalStartsDisabledWithoutEnv) {
  // The test binary does not set FTMC_OBS, so global() must be disabled:
  // library-internal counters stay no-ops unless a bench opts in.
  if (std::getenv("FTMC_OBS") != nullptr) {
    GTEST_SKIP() << "FTMC_OBS set in the environment";
  }
  EXPECT_FALSE(Registry::global().is_enabled());
}

}  // namespace
}  // namespace ftmc::obs
