/// Tests of span tracing: the no-op path without a lane, lane reuse,
/// bounded capacity with drop counting, and the Chrome trace-event
/// export (structural JSON validity, balanced B/E per lane).
#include "ftmc/obs/span.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "ftmc/obs/chrome_trace.hpp"

namespace ftmc::obs {
namespace {

/// Counts occurrences of `needle` in `text`.
std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ScopedSpan, NoOpWithoutALane) {
  SpanRecorder recorder;
  {
    ScopedSpan span("orphan");  // no LaneGuard on this thread
  }
  EXPECT_EQ(recorder.total_events(), 0u);
  EXPECT_EQ(recorder.lane_count(), 0u);
}

TEST(ScopedSpan, RecordsIntoTheInstalledLane) {
  SpanRecorder recorder;
  {
    LaneGuard lane(&recorder, "worker-0");
    { ScopedSpan span("mission"); }
    { ScopedSpan span("mission"); }
  }
  EXPECT_EQ(recorder.total_events(), 2u);
  EXPECT_EQ(recorder.lane_count(), 1u);
  EXPECT_EQ(recorder.total_dropped(), 0u);
}

TEST(ScopedSpan, NullRecorderGuardInstallsNothing) {
  LaneGuard lane(nullptr, "worker-0");
  ScopedSpan span("mission");  // must not crash, records nowhere
}

TEST(LaneGuard, ReenteringANameContinuesTheSameLane) {
  SpanRecorder recorder;
  {
    LaneGuard lane(&recorder, "worker-0");
    ScopedSpan span("region-1");
  }
  {
    LaneGuard lane(&recorder, "worker-0");  // second parallel region
    ScopedSpan span("region-2");
  }
  EXPECT_EQ(recorder.lane_count(), 1u);
  EXPECT_EQ(recorder.total_events(), 2u);
}

TEST(LaneGuard, RestoresThePreviousLaneOnExit) {
  SpanRecorder recorder;
  LaneGuard outer(&recorder, "outer");
  {
    LaneGuard inner(&recorder, "inner");
    ScopedSpan span("in-inner");
  }
  { ScopedSpan span("back-in-outer"); }
  EXPECT_EQ(recorder.lane_count(), 2u);
  EXPECT_EQ(recorder.total_events(), 2u);
}

TEST(SpanRecorder, CapacityBoundsLanesAndCountsDrops) {
  SpanRecorder recorder(/*capacity_per_lane=*/4);
  {
    LaneGuard lane(&recorder, "tiny");
    for (int i = 0; i < 10; ++i) {
      ScopedSpan span("s");
    }
  }
  EXPECT_EQ(recorder.total_events(), 4u);
  EXPECT_EQ(recorder.total_dropped(), 6u);
}

TEST(SpanRecorder, ConcurrentLanesRecordIndependently) {
  SpanRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&recorder, t] {
      LaneGuard lane(&recorder, "worker-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("mission");
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(recorder.lane_count(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(recorder.total_events(),
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
}

TEST(ChromeExport, BalancedBeginEndPerLane) {
  SpanRecorder recorder;
  {
    LaneGuard lane(&recorder, "worker-0");
    for (int i = 0; i < 3; ++i) {
      ScopedSpan span("mission");
    }
  }
  {
    LaneGuard lane(&recorder, "worker-1");
    ScopedSpan span("mission");
  }

  std::vector<std::string> events;
  recorder.append_chrome_events(events, /*pid=*/7, "test process");

  // Track B/E nesting per (pid, tid) by scanning the rendered objects.
  std::map<std::pair<int, int>, int> depth;
  int begins = 0;
  int ends = 0;
  for (const std::string& e : events) {
    const bool is_begin = e.find("\"ph\":\"B\"") != std::string::npos;
    const bool is_end = e.find("\"ph\":\"E\"") != std::string::npos;
    if (!is_begin && !is_end) continue;
    const auto pid_pos = e.find("\"pid\":");
    const auto tid_pos = e.find("\"tid\":");
    ASSERT_NE(pid_pos, std::string::npos);
    ASSERT_NE(tid_pos, std::string::npos);
    const int pid = std::stoi(e.substr(pid_pos + 6));
    const int tid = std::stoi(e.substr(tid_pos + 6));
    EXPECT_EQ(pid, 7);
    int& d = depth[{pid, tid}];
    if (is_begin) {
      ++d;
      ++begins;
    } else {
      --d;
      ++ends;
      ASSERT_GE(d, 0) << "E without matching B on tid " << tid;
    }
  }
  EXPECT_EQ(begins, 4);
  EXPECT_EQ(ends, 4);
  for (const auto& [lane, d] : depth) {
    EXPECT_EQ(d, 0) << "unbalanced lane tid " << lane.second;
  }
}

TEST(ChromeExport, DocumentIsStructurallyValidJson) {
  SpanRecorder recorder;
  {
    LaneGuard lane(&recorder, R"(we"ird\lane)");  // must be escaped
    ScopedSpan span("mission");
  }
  std::ostringstream os;
  recorder.write_chrome_trace(os, /*pid=*/1);
  const std::string doc = os.str();

  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  // Brace/bracket balance outside of strings.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char ch = doc[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;  // skip the escaped character
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    switch (ch) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
  // One thread-name metadata record and one B/E pair.
  EXPECT_EQ(count_occurrences(doc, "thread_name"), 1u);
  EXPECT_EQ(count_occurrences(doc, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_occurrences(doc, "\"ph\":\"E\""), 1u);
}

TEST(ChromeHelpers, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(chrome::escape("plain"), "plain");
  EXPECT_EQ(chrome::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(chrome::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(chrome::escape("a\nb"), "a\\nb");
}

TEST(SpanRecorder, LaneLimitDegradesToDroppingNotFailing) {
  SpanRecorder recorder(/*capacity_per_lane=*/8, /*max_lanes=*/2);
  EXPECT_NE(recorder.acquire_lane("a"), nullptr);
  EXPECT_NE(recorder.acquire_lane("b"), nullptr);
  EXPECT_EQ(recorder.acquire_lane("c"), nullptr);
  // Spans on the rejected lane are silent no-ops.
  LaneGuard lane(&recorder, "c");
  ScopedSpan span("mission");
  EXPECT_EQ(recorder.lane_count(), 2u);
}

}  // namespace
}  // namespace ftmc::obs
