// Tests of the Prometheus text-exposition writer (obs/exposition.hpp):
// name mangling, non-finite number spellings, and the cumulative-bucket
// histogram rendering that tools/expocheck.py gates in CI.
#include "ftmc/obs/exposition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "ftmc/obs/registry.hpp"

namespace obs = ftmc::obs;

namespace {

// Counts occurrences of `needle` in `text`.
std::size_t occurrences(const std::string& text, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

}  // namespace

TEST(Exposition, NameManglingProducesLegalMetricNames) {
  EXPECT_EQ(obs::prometheus_name("rt.context_switches"),
            "rt_context_switches");
  EXPECT_EQ(obs::prometheus_name("serve.latency_us.fts"),
            "serve_latency_us_fts");
  EXPECT_EQ(obs::prometheus_name("already_fine:colon"), "already_fine:colon");
  EXPECT_EQ(obs::prometheus_name("has spaces-and-dashes"),
            "has_spaces_and_dashes");
  // A leading digit is not a legal first character; it gets prefixed —
  // and an empty name degenerates to just the prefix underscore.
  EXPECT_EQ(obs::prometheus_name("9lives"), "_9lives");
  EXPECT_EQ(obs::prometheus_name(""), "_");
}

TEST(Exposition, NumbersUseCanonicalNonFiniteSpellings) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(obs::prometheus_number(inf), "+Inf");
  EXPECT_EQ(obs::prometheus_number(-inf), "-Inf");
  EXPECT_EQ(obs::prometheus_number(std::nan("")), "NaN");
  EXPECT_EQ(obs::prometheus_number(0.0), "0");
  EXPECT_EQ(obs::prometheus_number(2.5), "2.5");
  EXPECT_EQ(obs::prometheus_number(-17.0), "-17");
}

TEST(Exposition, CountersAndGaugesRenderWithTypeLines) {
  obs::Registry reg(/*enabled=*/true);
  reg.counter("check.sim_runs").inc(41);
  reg.gauge("queue.depth").set(3.0);

  const std::string out = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(out.find("# TYPE ftmc_check_sim_runs counter\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("ftmc_check_sim_runs 41\n"), std::string::npos) << out;
  EXPECT_NE(out.find("# TYPE ftmc_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("ftmc_queue_depth 3\n"), std::string::npos) << out;
}

TEST(Exposition, InfiniteGaugeNeverUsesTheJsonSpelling) {
  // The JSON snapshot maps +-inf to the strings "inf"/"-inf"; the
  // exposition writer must emit the scraper spellings instead.
  obs::Registry reg(/*enabled=*/true);
  reg.gauge("worst.lateness").set(std::numeric_limits<double>::infinity());
  reg.gauge("best.headroom").set(-std::numeric_limits<double>::infinity());

  const std::string out = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(out.find("ftmc_worst_lateness +Inf\n"), std::string::npos) << out;
  EXPECT_NE(out.find("ftmc_best_headroom -Inf\n"), std::string::npos) << out;
  EXPECT_EQ(out.find("\"inf\""), std::string::npos) << out;
  EXPECT_EQ(out.find(" inf\n"), std::string::npos) << out;
}

TEST(Exposition, HistogramBucketsAreCumulativeAndEndAtInf) {
  obs::Registry reg(/*enabled=*/true);
  obs::Histogram h = reg.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);   // bucket <= 1
  h.observe(0.7);   // bucket <= 1
  h.observe(5.0);   // bucket <= 10
  h.observe(1e6);   // overflow bucket

  const std::string out = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(out.find("# TYPE ftmc_lat histogram\n"), std::string::npos);
  // Cumulative counts: 2, 3, 3, and the +Inf bucket equals _count.
  EXPECT_NE(out.find("ftmc_lat_bucket{le=\"1\"} 2\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("ftmc_lat_bucket{le=\"10\"} 3\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("ftmc_lat_bucket{le=\"100\"} 3\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("ftmc_lat_bucket{le=\"+Inf\"} 4\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("ftmc_lat_count 4\n"), std::string::npos) << out;
  EXPECT_NE(out.find("ftmc_lat_sum "), std::string::npos) << out;
  // Exactly one +Inf bucket, and it comes after the finite ones.
  EXPECT_EQ(occurrences(out, "ftmc_lat_bucket"), 4u);
  EXPECT_LT(out.find("le=\"100\""), out.find("le=\"+Inf\"")) << out;
}

TEST(Exposition, EmptyHistogramStillExportsTheFullShape) {
  obs::Registry reg(/*enabled=*/true);
  (void)reg.histogram("idle", {2.0});

  const std::string out = obs::to_prometheus(reg.snapshot());
  EXPECT_NE(out.find("ftmc_idle_bucket{le=\"2\"} 0\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("ftmc_idle_bucket{le=\"+Inf\"} 0\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("ftmc_idle_count 0\n"), std::string::npos) << out;
  EXPECT_NE(out.find("ftmc_idle_sum 0\n"), std::string::npos) << out;
}

TEST(Exposition, PrefixIsConfigurable) {
  obs::Registry reg(/*enabled=*/true);
  reg.counter("x").inc();
  const std::string out = obs::to_prometheus(reg.snapshot(), "acme_");
  EXPECT_NE(out.find("# TYPE acme_x counter\n"), std::string::npos) << out;
  EXPECT_EQ(out.find("ftmc_"), std::string::npos) << out;
}

TEST(Exposition, EmptySnapshotRendersNothing) {
  const obs::Snapshot empty;
  EXPECT_EQ(obs::to_prometheus(empty), "");
}
